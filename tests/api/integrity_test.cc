// Frame-integrity and multi-node codec coverage: the flag-0x10 CRC32
// trailer (bit flips become typed kDataLoss instead of silently decoding as
// a different message), the flag-0x20 degraded-response marker, and the
// Describe/Candidate messages the shard router speaks.
#include <cstdint>
#include <limits>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "api/codec.h"

namespace cbir::api {
namespace {

FeedbackRequest SampleFeedback() {
  FeedbackRequest m;
  m.session_id = 77;
  m.k = 10;
  m.round = {logdb::LogEntry{4, 1}, logdb::LogEntry{9, -1}};
  return m;
}

QueryResponse SampleRanking() {
  QueryResponse m;
  m.ranking = {5, 1, 4, 1, 5, 9, 2, 6};
  return m;
}

// ------------------------------------------------------ checksum trailer --

TEST(ChecksumTest, RequestRoundTripsWithTrailer) {
  const FeedbackRequest m = SampleFeedback();
  const std::vector<uint8_t> frame =
      EncodeRequest(Request(m), RequestEnvelope::WithChecksum());
  Result<FrameHeader> header = DecodeFrameHeader(frame.data(), frame.size());
  ASSERT_TRUE(header.ok()) << header.status();
  EXPECT_EQ(header->version, kProtocolVersion);
  EXPECT_NE(header->flags & kFrameFlagChecksum, 0);
  RequestEnvelope envelope;
  Result<Request> decoded =
      DecodeRequest(frame.data(), frame.size(), &envelope);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(envelope.has_checksum);
  ASSERT_TRUE(std::holds_alternative<FeedbackRequest>(decoded.value()));
  EXPECT_TRUE(std::get<FeedbackRequest>(decoded.value()) == m);
}

TEST(ChecksumTest, ResponseRoundTripsWithTrailer) {
  const QueryResponse m = SampleRanking();
  ResponseFrameOptions options;
  options.checksum = true;
  const std::vector<uint8_t> frame = EncodeResponse(Response(m), options);
  Result<FrameHeader> header = DecodeFrameHeader(frame.data(), frame.size());
  ASSERT_TRUE(header.ok()) << header.status();
  EXPECT_NE(header->flags & kFrameFlagChecksum, 0);
  Result<Response> decoded = DecodeResponse(frame.data(), frame.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_TRUE(std::holds_alternative<QueryResponse>(decoded.value()));
  EXPECT_TRUE(std::get<QueryResponse>(decoded.value()) == m);
}

TEST(ChecksumTest, ChecksumComposesWithEnvelopeFields) {
  const FeedbackRequest m = SampleFeedback();
  RequestEnvelope sent = RequestEnvelope::WithDeadline(2500);
  sent.has_seq = true;
  sent.seq = 3;
  sent.has_checksum = true;
  const std::vector<uint8_t> frame = EncodeRequest(Request(m), sent);
  RequestEnvelope got;
  Result<Request> decoded = DecodeRequest(frame.data(), frame.size(), &got);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(got == sent);
}

TEST(ChecksumTest, UnsetFlagIsByteIdenticalToPlainFrame) {
  // The trailer is strictly opt-in: without the flag the frame must not
  // change by a single byte (v1 peers see v1 traffic).
  const FeedbackRequest m = SampleFeedback();
  RequestEnvelope off;
  off.has_checksum = false;
  EXPECT_EQ(EncodeRequest(Request(m)), EncodeRequest(Request(m), off));
  ResponseFrameOptions plain;
  plain.checksum = false;
  EXPECT_EQ(EncodeResponse(Response(SampleRanking())),
            EncodeResponse(Response(SampleRanking()), plain));
}

TEST(ChecksumTest, CorruptTrailerIsDataLoss) {
  const std::vector<uint8_t> frame =
      EncodeRequest(Request(SampleFeedback()), RequestEnvelope::WithChecksum());
  std::vector<uint8_t> corrupt = frame;
  corrupt.back() ^= 0x01;  // the CRC itself
  Result<Request> decoded = DecodeRequest(corrupt.data(), corrupt.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(ChecksumTest, EverySingleBitFlipOfBodyIsDataLoss) {
  // The trailer's whole point: with the checksum on, NO body or envelope
  // bit flip may decode — each one must surface as typed kDataLoss. (The
  // plain-frame corpus test only asserts "no UB"; a flipped plain frame may
  // legally decode as a different valid message.)
  const std::vector<uint8_t> frame =
      EncodeRequest(Request(SampleFeedback()), RequestEnvelope::WithChecksum());
  for (size_t byte = kFrameHeaderBytes; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> corrupt = frame;
      corrupt[byte] = uint8_t(corrupt[byte] ^ (1u << bit));
      Result<Request> decoded = DecodeRequest(corrupt.data(), corrupt.size());
      ASSERT_FALSE(decoded.ok())
          << "byte " << byte << " bit " << bit << " decoded";
      EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss)
          << "byte " << byte << " bit " << bit << ": " << decoded.status();
    }
  }
}

TEST(ChecksumTest, HeaderBitFlipsNeverDecodeSuccessfully) {
  // Header flips can fail structurally (bad magic, bad version, wrong
  // length) before the CRC is even checked — any typed error is fine, but
  // success would mean the CRC failed to cover the header.
  const std::vector<uint8_t> frame =
      EncodeRequest(Request(SampleFeedback()), RequestEnvelope::WithChecksum());
  for (size_t byte = 0; byte < kFrameHeaderBytes; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> corrupt = frame;
      corrupt[byte] = uint8_t(corrupt[byte] ^ (1u << bit));
      Result<Request> decoded = DecodeRequest(corrupt.data(), corrupt.size());
      EXPECT_FALSE(decoded.ok())
          << "header byte " << byte << " bit " << bit << " decoded";
    }
  }
}

TEST(ChecksumTest, ResponseBitFlipsAreDataLossToo) {
  ResponseFrameOptions options;
  options.checksum = true;
  const std::vector<uint8_t> frame =
      EncodeResponse(Response(SampleRanking()), options);
  for (size_t byte = kFrameHeaderBytes; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> corrupt = frame;
      corrupt[byte] = uint8_t(corrupt[byte] ^ (1u << bit));
      Result<Response> decoded =
          DecodeResponse(corrupt.data(), corrupt.size());
      ASSERT_FALSE(decoded.ok())
          << "byte " << byte << " bit " << bit << " decoded";
      EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
    }
  }
}

TEST(ChecksumTest, TruncatedTrailerFailsTyped) {
  const std::vector<uint8_t> frame =
      EncodeRequest(Request(SampleFeedback()), RequestEnvelope::WithChecksum());
  // Shorten body_size so the checksum flag is set but the body cannot hold
  // the 4-byte trailer: must be a typed error, never an OOB read.
  for (size_t cut = 1; cut <= kChecksumTrailerBytes; ++cut) {
    std::vector<uint8_t> corrupt(frame.begin(), frame.end() - cut);
    const uint32_t new_size =
        static_cast<uint32_t>(corrupt.size() - kFrameHeaderBytes);
    corrupt[8] = uint8_t(new_size & 0xFF);
    corrupt[9] = uint8_t((new_size >> 8) & 0xFF);
    corrupt[10] = uint8_t((new_size >> 16) & 0xFF);
    corrupt[11] = uint8_t((new_size >> 24) & 0xFF);
    Result<Request> decoded = DecodeRequest(corrupt.data(), corrupt.size());
    EXPECT_FALSE(decoded.ok()) << "cut " << cut << " decoded";
  }
}

// ------------------------------------------------------- degraded flag --

TEST(DegradedTest, FlagRoundTripsOnResponses) {
  ResponseFrameOptions options;
  options.degraded = true;
  const std::vector<uint8_t> frame =
      EncodeResponse(Response(SampleRanking()), options);
  Result<FrameHeader> header = DecodeFrameHeader(frame.data(), frame.size());
  ASSERT_TRUE(header.ok()) << header.status();
  EXPECT_NE(header->flags & kFrameFlagDegraded, 0);
  bool degraded = false;
  Result<Response> decoded =
      DecodeResponse(frame.data(), frame.size(), nullptr, &degraded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(degraded);
  ASSERT_TRUE(std::holds_alternative<QueryResponse>(decoded.value()));
  EXPECT_TRUE(std::get<QueryResponse>(decoded.value()) == SampleRanking());
}

TEST(DegradedTest, FlagComposesWithChecksum) {
  ResponseFrameOptions options;
  options.degraded = true;
  options.checksum = true;
  const std::vector<uint8_t> frame =
      EncodeResponse(Response(SampleRanking()), options);
  bool degraded = false;
  Result<Response> decoded =
      DecodeResponse(frame.data(), frame.size(), nullptr, &degraded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(degraded);
}

TEST(DegradedTest, PlainResponseReportsNotDegraded) {
  const std::vector<uint8_t> frame = EncodeResponse(Response(SampleRanking()));
  bool degraded = true;
  Result<Response> decoded =
      DecodeResponse(frame.data(), frame.size(), nullptr, &degraded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_FALSE(degraded);
}

TEST(DegradedTest, DegradedBitOnRequestRejected) {
  // 0x20 is response-only; a request frame carrying it is malformed.
  std::vector<uint8_t> frame =
      EncodeRequest(Request(SampleFeedback()), RequestEnvelope::WithChecksum());
  frame[7] = uint8_t(frame[7] | kFrameFlagDegraded);
  Result<Request> decoded = DecodeRequest(frame.data(), frame.size());
  EXPECT_FALSE(decoded.ok());
}

// ------------------------------------------- router handshake messages --

TEST(DescribeTest, RequestRoundTrips) {
  const Request request((DescribeRequest()));
  const std::vector<uint8_t> frame = EncodeRequest(request);
  Result<Request> decoded = DecodeRequest(frame.data(), frame.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(std::holds_alternative<DescribeRequest>(decoded.value()));
}

TEST(DescribeTest, ResponseRoundTrips) {
  DescribeResponse m;
  m.corpus_size = 123456789ull;
  m.dims = 36;
  m.num_categories = 50;
  m.candidate_depth = 41;
  m.default_k = 20;
  m.scheme = "RF-SVM";
  m.index = "signature(64 bits)";
  const std::vector<uint8_t> frame = EncodeResponse(Response(m));
  Result<Response> decoded = DecodeResponse(frame.data(), frame.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_TRUE(std::holds_alternative<DescribeResponse>(decoded.value()));
  EXPECT_TRUE(std::get<DescribeResponse>(decoded.value()) == m);
}

TEST(CandidateTest, RequestRoundTripsBothQueryKinds) {
  CandidateRequest by_id;
  by_id.query = QuerySpec::ById(42);
  by_id.k = 30;
  {
    const std::vector<uint8_t> frame = EncodeRequest(Request(by_id));
    Result<Request> decoded = DecodeRequest(frame.data(), frame.size());
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    ASSERT_TRUE(std::holds_alternative<CandidateRequest>(decoded.value()));
    EXPECT_TRUE(std::get<CandidateRequest>(decoded.value()) == by_id);
  }
  CandidateRequest by_feature;
  by_feature.query = QuerySpec::ByFeature({1.0, -2.5, 1e-9});
  {
    const std::vector<uint8_t> frame = EncodeRequest(Request(by_feature));
    Result<Request> decoded = DecodeRequest(frame.data(), frame.size());
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    ASSERT_TRUE(std::holds_alternative<CandidateRequest>(decoded.value()));
    EXPECT_TRUE(std::get<CandidateRequest>(decoded.value()) == by_feature);
  }
}

TEST(CandidateTest, ResponseRoundTripsWithDistances) {
  CandidateResponse m;
  m.candidates = {{7, 0.0},
                  {3, 1.25},
                  {-1, std::numeric_limits<double>::infinity()}};
  const std::vector<uint8_t> frame = EncodeResponse(Response(m));
  Result<Response> decoded = DecodeResponse(frame.data(), frame.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_TRUE(std::holds_alternative<CandidateResponse>(decoded.value()));
  EXPECT_TRUE(std::get<CandidateResponse>(decoded.value()) == m);
}

TEST(CandidateTest, HostileCandidateCountRejectedBeforeAllocation) {
  CandidateResponse m;
  m.candidates = {{1, 1.0}};
  std::vector<uint8_t> frame = EncodeResponse(Response(m));
  // The count u32 follows the 8-byte OK WireStatus (u32 code + u32 empty
  // message length); inflate it far past the actual payload and far past
  // kMaxFrameBody-worth of candidates.
  frame[kFrameHeaderBytes + 8] = 0xFF;
  frame[kFrameHeaderBytes + 9] = 0xFF;
  frame[kFrameHeaderBytes + 10] = 0xFF;
  frame[kFrameHeaderBytes + 11] = 0x7F;
  Result<Response> decoded = DecodeResponse(frame.data(), frame.size());
  EXPECT_FALSE(decoded.ok());
}

}  // namespace
}  // namespace cbir::api
