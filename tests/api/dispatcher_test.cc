#include "api/dispatcher.h"

#include <memory>
#include <variant>

#include <gtest/gtest.h>

#include "api/codec.h"
#include "core/feedback_scheme.h"
#include "retrieval/synthetic_features.h"

namespace cbir::api {
namespace {

/// Small synthetic-feature service shared by all dispatcher tests.
class DispatcherTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new retrieval::ImageDatabase(retrieval::ClusteredDatabase(400, 3));
    serve::ServiceOptions options;
    options.scheme = "Euclidean";
    options.candidate_depth = 0;
    options.default_k = 10;
    auto service = serve::RetrievalService::Create(
        db_, nullptr, nullptr,
        core::MakeDefaultSchemeOptions(*db_, nullptr), options);
    ASSERT_TRUE(service.ok()) << service.status();
    service_ = std::move(service).value().release();
  }
  static void TearDownTestSuite() {
    delete service_;
    service_ = nullptr;
    delete db_;
    db_ = nullptr;
  }

  static retrieval::ImageDatabase* db_;
  static serve::RetrievalService* service_;
};

retrieval::ImageDatabase* DispatcherTest::db_ = nullptr;
serve::RetrievalService* DispatcherTest::service_ = nullptr;

TEST_F(DispatcherTest, FullSessionFlow) {
  Dispatcher dispatcher(service_);

  StartSessionRequest start;
  start.query = QuerySpec::ById(5);
  StartSessionResponse started = dispatcher.Handle(start);
  ASSERT_TRUE(started.status.ok()) << started.status.message;
  ASSERT_NE(started.session_id, 0u);

  QueryRequest query;
  query.session_id = started.session_id;
  query.k = 8;
  QueryResponse ranked = dispatcher.Handle(query);
  ASSERT_TRUE(ranked.status.ok()) << ranked.status.message;
  ASSERT_EQ(ranked.ranking.size(), 8u);
  // Same ranking the service returns directly: one shared code path.
  auto direct = service_->Query(started.session_id, 8);
  ASSERT_TRUE(direct.ok());
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(static_cast<int>(ranked.ranking[i]), direct.value()[i]);
  }

  FeedbackRequest feedback;
  feedback.session_id = started.session_id;
  feedback.k = 8;
  feedback.round = {logdb::LogEntry{ranked.ranking[0], 1},
                    logdb::LogEntry{ranked.ranking[1], -1}};
  FeedbackResponse reranked = dispatcher.Handle(feedback);
  ASSERT_TRUE(reranked.status.ok()) << reranked.status.message;
  EXPECT_EQ(reranked.ranking.size(), 8u);

  EndSessionRequest end;
  end.session_id = started.session_id;
  EXPECT_TRUE(dispatcher.Handle(end).status.ok());
  // Ended session: typed NotFound in the wire status, not a crash.
  QueryResponse after = dispatcher.Handle(query);
  EXPECT_EQ(StatusCodeFromWireCode(after.status.code), StatusCode::kNotFound);
}

TEST_F(DispatcherTest, ExternalFeatureQueryStartsSession) {
  Dispatcher dispatcher(service_);
  StartSessionRequest start;
  start.query = QuerySpec::ByFeature(db_->feature(7));
  StartSessionResponse started = dispatcher.Handle(start);
  ASSERT_TRUE(started.status.ok()) << started.status.message;

  QueryRequest query;
  query.session_id = started.session_id;
  query.k = 5;
  QueryResponse ranked = dispatcher.Handle(query);
  ASSERT_TRUE(ranked.status.ok());
  // The identical-feature corpus image ranks first (distance zero) instead
  // of being excluded the way an in-corpus query session would exclude it.
  ASSERT_FALSE(ranked.ranking.empty());
  EXPECT_EQ(ranked.ranking[0], 7);
  EXPECT_TRUE(
      dispatcher.Handle(EndSessionRequest{started.session_id}).status.ok());
}

TEST_F(DispatcherTest, ErrorsComeBackAsWireStatusNotCrashes) {
  Dispatcher dispatcher(service_);

  StartSessionRequest bad_id;
  bad_id.query = QuerySpec::ById(db_->num_images() + 5);
  EXPECT_EQ(StatusCodeFromWireCode(dispatcher.Handle(bad_id).status.code),
            StatusCode::kInvalidArgument);

  StartSessionRequest bad_dims;
  bad_dims.query = QuerySpec::ByFeature({1.0, 2.0});  // corpus is 36-dim
  EXPECT_EQ(StatusCodeFromWireCode(dispatcher.Handle(bad_dims).status.code),
            StatusCode::kInvalidArgument);

  StartSessionRequest empty_feature;
  empty_feature.query = QuerySpec::ByFeature({});
  EXPECT_EQ(
      StatusCodeFromWireCode(dispatcher.Handle(empty_feature).status.code),
      StatusCode::kInvalidArgument);

  QueryRequest unknown;
  unknown.session_id = 0xFFFFFFFFull;
  EXPECT_EQ(StatusCodeFromWireCode(dispatcher.Handle(unknown).status.code),
            StatusCode::kNotFound);

  FeedbackRequest bad_judgment;
  auto sid = service_->StartSession(0);
  ASSERT_TRUE(sid.ok());
  bad_judgment.session_id = sid.value();
  bad_judgment.round = {logdb::LogEntry{1, 5}};
  EXPECT_EQ(
      StatusCodeFromWireCode(dispatcher.Handle(bad_judgment).status.code),
      StatusCode::kInvalidArgument);
  EXPECT_TRUE(service_->EndSession(sid.value()).ok());
}

TEST_F(DispatcherTest, DispatchRoutesEveryRequestType) {
  Dispatcher dispatcher(service_);
  EXPECT_TRUE(
      std::holds_alternative<StatsResponse>(dispatcher.Dispatch(
          Request(StatsRequest{}))));
  EXPECT_TRUE(std::holds_alternative<QueryResponse>(
      dispatcher.Dispatch(Request(QueryRequest{}))));
  EXPECT_TRUE(std::holds_alternative<FeedbackResponse>(
      dispatcher.Dispatch(Request(FeedbackRequest{}))));
  EXPECT_TRUE(std::holds_alternative<EndSessionResponse>(
      dispatcher.Dispatch(Request(EndSessionRequest{}))));
  StartSessionRequest start;
  start.query = QuerySpec::ById(0);
  Response started = dispatcher.Dispatch(Request(start));
  ASSERT_TRUE(std::holds_alternative<StartSessionResponse>(started));
  EXPECT_TRUE(service_
                  ->EndSession(std::get<StartSessionResponse>(started)
                                   .session_id)
                  .ok());
}

TEST_F(DispatcherTest, StatsReflectServiceCounters) {
  Dispatcher dispatcher(service_);
  const StatsResponse before = dispatcher.Handle(StatsRequest{});
  auto sid = service_->StartSession(1);
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(service_->Query(sid.value()).ok());
  ASSERT_TRUE(service_->EndSession(sid.value()).ok());
  const StatsResponse after = dispatcher.Handle(StatsRequest{});
  EXPECT_TRUE(after.status.ok());
  EXPECT_GE(after.queries, before.queries + 1);
  EXPECT_GE(after.sessions_ended, before.sessions_ended + 1);
}

}  // namespace
}  // namespace cbir::api
