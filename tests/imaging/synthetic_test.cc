#include "imaging/synthetic.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "imaging/color.h"

namespace cbir::imaging {
namespace {

SyntheticCorelOptions SmallOptions() {
  SyntheticCorelOptions options;
  options.num_categories = 5;
  options.images_per_category = 4;
  options.width = 32;
  options.height = 32;
  options.seed = 42;
  return options;
}

TEST(SyntheticCorelTest, Dimensions) {
  SyntheticCorel corpus(SmallOptions());
  EXPECT_EQ(corpus.num_images(), 20);
  const Image img = corpus.Generate(0, 0);
  EXPECT_EQ(img.width(), 32);
  EXPECT_EQ(img.height(), 32);
}

TEST(SyntheticCorelTest, DeterministicAcrossInstances) {
  SyntheticCorel a(SmallOptions()), b(SmallOptions());
  for (int c = 0; c < 5; ++c) {
    EXPECT_EQ(a.Generate(c, 1).data(), b.Generate(c, 1).data());
  }
}

TEST(SyntheticCorelTest, DifferentImagesDiffer) {
  SyntheticCorel corpus(SmallOptions());
  EXPECT_NE(corpus.Generate(0, 0).data(), corpus.Generate(0, 1).data());
  EXPECT_NE(corpus.Generate(0, 0).data(), corpus.Generate(1, 0).data());
}

TEST(SyntheticCorelTest, SeedChangesCorpus) {
  SyntheticCorelOptions other = SmallOptions();
  other.seed = 43;
  SyntheticCorel a(SmallOptions()), b(other);
  EXPECT_NE(a.Generate(0, 0).data(), b.Generate(0, 0).data());
}

TEST(SyntheticCorelTest, GenerateByIdMatchesCategoryIndex) {
  SyntheticCorel corpus(SmallOptions());
  // id 7 = category 1, index 3 (4 images per category).
  EXPECT_EQ(corpus.GenerateById(7).data(), corpus.Generate(1, 3).data());
  EXPECT_EQ(corpus.CategoryOf(7), 1);
  EXPECT_EQ(corpus.CategoryOf(0), 0);
  EXPECT_EQ(corpus.CategoryOf(19), 4);
}

TEST(SyntheticCorelTest, CategoryNames) {
  SyntheticCorel corpus(SmallOptions());
  EXPECT_EQ(corpus.CategoryName(0), "antique");
  EXPECT_EQ(corpus.CategoryName(1), "antelope");
  // Past the built-in list of 50 names, synthesized labels appear.
  SyntheticCorelOptions big = SmallOptions();
  big.num_categories = 60;
  big.images_per_category = 1;
  SyntheticCorel large(big);
  EXPECT_EQ(large.CategoryName(55), "category-55");
}

TEST(SyntheticCorelTest, ThemesVaryAcrossCategories) {
  SyntheticCorelOptions options = SmallOptions();
  options.num_categories = 20;
  SyntheticCorel corpus(options);
  std::set<int> shape_kinds, bg_kinds;
  for (int c = 0; c < 20; ++c) {
    shape_kinds.insert(corpus.theme(c).shape_kind);
    bg_kinds.insert(corpus.theme(c).bg_kind);
  }
  // With 20 categories the small vocabularies should be well covered.
  EXPECT_GE(shape_kinds.size(), 3u);
  EXPECT_GE(bg_kinds.size(), 3u);
}

TEST(SyntheticCorelTest, IntraCategoryHuesCluster) {
  // Images of one category should have mean hue closer to the category base
  // hue than to an arbitrary different family, on average. We check hue
  // dispersion: same-category images cluster more tightly than the corpus.
  SyntheticCorelOptions options = SmallOptions();
  options.num_categories = 8;
  options.images_per_category = 6;
  SyntheticCorel corpus(options);

  auto mean_saturation_weighted_hue = [](const Image& img) {
    double sx = 0.0, sy = 0.0;
    for (int y = 0; y < img.height(); ++y) {
      for (int x = 0; x < img.width(); ++x) {
        const Hsv hsv = RgbToHsv(img.At(x, y));
        const double rad = hsv.h * M_PI / 180.0;
        sx += hsv.s * std::cos(rad);
        sy += hsv.s * std::sin(rad);
      }
    }
    return std::atan2(sy, sx);
  };

  // Circular variance of per-image hue within category 0 vs across the
  // whole corpus.
  auto circular_resultant = [&](const std::vector<double>& angles) {
    double cx = 0.0, cy = 0.0;
    for (double a : angles) {
      cx += std::cos(a);
      cy += std::sin(a);
    }
    return std::sqrt(cx * cx + cy * cy) / angles.size();
  };

  std::vector<double> within, across;
  for (int i = 0; i < 6; ++i) {
    within.push_back(mean_saturation_weighted_hue(corpus.Generate(0, i)));
  }
  for (int c = 0; c < 8; ++c) {
    across.push_back(mean_saturation_weighted_hue(corpus.Generate(c, 0)));
  }
  // Resultant length near 1 = tight cluster; the within-category cluster
  // must be tighter than the cross-category spread.
  EXPECT_GT(circular_resultant(within), circular_resultant(across));
}

TEST(SyntheticCorelDeathTest, BadArguments) {
  SyntheticCorel corpus(SmallOptions());
  EXPECT_DEATH((void)corpus.Generate(5, 0), "Check failed");
  EXPECT_DEATH((void)corpus.Generate(0, 4), "Check failed");
  EXPECT_DEATH((void)corpus.CategoryOf(20), "Check failed");
}

}  // namespace
}  // namespace cbir::imaging
