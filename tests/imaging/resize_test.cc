#include "imaging/resize.h"

#include <gtest/gtest.h>

namespace cbir::imaging {
namespace {

TEST(ResizeTest, IdentityResize) {
  Image img(4, 4);
  img.Set(1, 2, Rgb{10, 20, 30});
  const Image out = ResizeBilinear(img, 4, 4);
  EXPECT_EQ(out.data(), img.data());
}

TEST(ResizeTest, ConstantImageStaysConstant) {
  Image img(8, 8, Rgb{77, 88, 99});
  const Image out = ResizeBilinear(img, 3, 5);
  for (int y = 0; y < out.height(); ++y) {
    for (int x = 0; x < out.width(); ++x) {
      EXPECT_EQ(out.At(x, y), (Rgb{77, 88, 99}));
    }
  }
}

TEST(ResizeTest, UpscaleDimensions) {
  Image img(2, 2);
  const Image out = ResizeBilinear(img, 7, 9);
  EXPECT_EQ(out.width(), 7);
  EXPECT_EQ(out.height(), 9);
}

TEST(ResizeTest, DownscaleAveragesRegions) {
  // Left half white, right half black; 2x1 downscale keeps the halves apart.
  Image img(8, 8);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      img.Set(x, y, x < 4 ? Rgb{255, 255, 255} : Rgb{0, 0, 0});
    }
  }
  const Image out = ResizeBilinear(img, 2, 1);
  EXPECT_GT(out.At(0, 0).r, 200);
  EXPECT_LT(out.At(1, 0).r, 55);
}

TEST(PasteTest, PlacesAndClips) {
  Image dst(4, 4, Rgb{0, 0, 0});
  Image src(2, 2, Rgb{255, 0, 0});
  Paste(&dst, src, 3, 3);  // only (3,3) lands inside
  EXPECT_EQ(dst.At(3, 3), (Rgb{255, 0, 0}));
  EXPECT_EQ(dst.At(2, 2), (Rgb{0, 0, 0}));
  Paste(&dst, src, -1, -1);  // only overlapping pixel (0,0) <- src(1,1)
  EXPECT_EQ(dst.At(0, 0), (Rgb{255, 0, 0}));
}

TEST(ResizeDeathTest, NonPositiveTarget) {
  Image img(2, 2);
  EXPECT_DEATH((void)ResizeBilinear(img, 0, 2), "Check failed");
}

}  // namespace
}  // namespace cbir::imaging
