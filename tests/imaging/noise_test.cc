#include "imaging/noise.h"

#include <cmath>

#include <gtest/gtest.h>

namespace cbir::imaging {
namespace {

TEST(ValueNoiseTest, DeterministicForSeed) {
  ValueNoise a(42), b(42);
  for (double x = 0.0; x < 5.0; x += 0.7) {
    EXPECT_DOUBLE_EQ(a.Sample(x, 2 * x), b.Sample(x, 2 * x));
  }
}

TEST(ValueNoiseTest, DifferentSeedsDiffer) {
  ValueNoise a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (std::fabs(a.Sample(i * 0.37, i * 0.61) -
                  b.Sample(i * 0.37, i * 0.61)) < 1e-12) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(ValueNoiseTest, RangeWithinUnitInterval) {
  ValueNoise noise(7);
  for (int i = 0; i < 500; ++i) {
    const double v = noise.Sample(i * 0.173, i * 0.291);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(ValueNoiseTest, SmoothBetweenLatticePoints) {
  ValueNoise noise(11);
  // Adjacent samples 0.01 apart must differ far less than distant ones can.
  double max_step = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double x = i * 0.01;
    max_step = std::max(max_step,
                        std::fabs(noise.Sample(x + 0.01, 0.5) -
                                  noise.Sample(x, 0.5)));
  }
  EXPECT_LT(max_step, 0.2);
}

TEST(ValueNoiseTest, FbmStaysInRange) {
  ValueNoise noise(13);
  for (int i = 0; i < 300; ++i) {
    const double v = noise.Fbm(i * 0.17, i * 0.05, 4);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(AddFbmNoiseTest, ChangesPixelsButKeepsMeanRoughly) {
  Image img(32, 32, Rgb{128, 128, 128});
  AddFbmNoise(&img, 99, 4.0, 3, 0.2);
  double mean = 0.0;
  int changed = 0;
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      mean += img.At(x, y).r;
      if (img.At(x, y).r != 128) ++changed;
    }
  }
  mean /= 32 * 32;
  EXPECT_GT(changed, 500);
  EXPECT_NEAR(mean, 128.0, 20.0);
}

TEST(AddGratingTest, CreatesPeriodicPattern) {
  Image img(64, 64, Rgb{128, 128, 128});
  AddGrating(&img, 8.0, 0.0, 0.3);  // horizontal frequency, 8 cycles / width
  // One full period is 8 pixels: value at x and x+8 must match closely.
  for (int x = 0; x < 32; ++x) {
    EXPECT_NEAR(img.At(x, 10).r, img.At(x + 8, 10).r, 2);
  }
  // And the pattern is non-constant.
  int distinct = 0;
  for (int x = 1; x < 16; ++x) {
    if (img.At(x, 10).r != img.At(0, 10).r) ++distinct;
  }
  EXPECT_GT(distinct, 4);
}

TEST(AddPixelNoiseTest, ZeroSigmaIsNoop) {
  Image img(8, 8, Rgb{100, 100, 100});
  AddPixelNoise(&img, 3, 0.0);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      EXPECT_EQ(img.At(x, y), (Rgb{100, 100, 100}));
    }
  }
}

TEST(AddPixelNoiseTest, DeterministicInSeed) {
  Image a(16, 16, Rgb{100, 100, 100});
  Image b(16, 16, Rgb{100, 100, 100});
  AddPixelNoise(&a, 5, 8.0);
  AddPixelNoise(&b, 5, 8.0);
  EXPECT_EQ(a.data(), b.data());
}

}  // namespace
}  // namespace cbir::imaging
