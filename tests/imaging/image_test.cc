#include "imaging/image.h"

#include <gtest/gtest.h>

namespace cbir::imaging {
namespace {

TEST(ImageTest, ConstructWithFill) {
  Image img(4, 3, Rgb{10, 20, 30});
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_FALSE(img.empty());
  EXPECT_EQ(img.At(3, 2), (Rgb{10, 20, 30}));
}

TEST(ImageTest, DefaultIsEmpty) {
  Image img;
  EXPECT_TRUE(img.empty());
}

TEST(ImageTest, SetAndGet) {
  Image img(2, 2);
  img.Set(1, 0, Rgb{255, 0, 128});
  EXPECT_EQ(img.At(1, 0), (Rgb{255, 0, 128}));
  EXPECT_EQ(img.At(0, 0), (Rgb{0, 0, 0}));
}

TEST(ImageTest, DataLayoutIsInterleavedRowMajor) {
  Image img(2, 2);
  img.Set(1, 0, Rgb{1, 2, 3});
  img.Set(0, 1, Rgb{4, 5, 6});
  const auto& d = img.data();
  ASSERT_EQ(d.size(), 12u);
  EXPECT_EQ(d[3], 1);  // pixel (1,0) starts at byte 3
  EXPECT_EQ(d[4], 2);
  EXPECT_EQ(d[5], 3);
  EXPECT_EQ(d[6], 4);  // pixel (0,1) starts at byte 6
}

TEST(ImageTest, SetClippedInsideAndOutside) {
  Image img(2, 2);
  EXPECT_TRUE(img.SetClipped(0, 0, Rgb{9, 9, 9}));
  EXPECT_FALSE(img.SetClipped(-1, 0, Rgb{9, 9, 9}));
  EXPECT_FALSE(img.SetClipped(0, 2, Rgb{9, 9, 9}));
  EXPECT_FALSE(img.SetClipped(5, 5, Rgb{9, 9, 9}));
  EXPECT_EQ(img.At(0, 0), (Rgb{9, 9, 9}));
}

TEST(ImageTest, BlendClipped) {
  Image img(1, 1, Rgb{0, 0, 0});
  img.BlendClipped(0, 0, Rgb{200, 100, 50}, 0.5);
  const Rgb c = img.At(0, 0);
  EXPECT_EQ(c.r, 100);
  EXPECT_EQ(c.g, 50);
  EXPECT_EQ(c.b, 25);
  // Out-of-range alpha clamps.
  img.BlendClipped(0, 0, Rgb{255, 255, 255}, 2.0);
  EXPECT_EQ(img.At(0, 0), (Rgb{255, 255, 255}));
  // Outside the raster: no-op.
  img.BlendClipped(7, 7, Rgb{1, 1, 1}, 1.0);
}

TEST(ImageTest, Fill) {
  Image img(3, 3);
  img.Fill(Rgb{7, 8, 9});
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) {
      EXPECT_EQ(img.At(x, y), (Rgb{7, 8, 9}));
    }
  }
}

TEST(ImageDeathTest, AtOutOfBounds) {
  Image img(2, 2);
  EXPECT_DEATH((void)img.At(2, 0), "outside");
  EXPECT_DEATH(img.Set(0, -1, Rgb{}), "outside");
}

TEST(GrayImageTest, ConstructAndAccess) {
  GrayImage g(3, 2, 0.5f);
  EXPECT_EQ(g.width(), 3);
  EXPECT_EQ(g.height(), 2);
  EXPECT_FLOAT_EQ(g.At(2, 1), 0.5f);
  g.Set(1, 1, 0.25f);
  EXPECT_FLOAT_EQ(g.At(1, 1), 0.25f);
}

TEST(GrayImageTest, AtClampedReplicatesBorder) {
  GrayImage g(2, 2);
  g.Set(0, 0, 1.0f);
  g.Set(1, 1, 4.0f);
  EXPECT_FLOAT_EQ(g.AtClamped(-5, -5), 1.0f);
  EXPECT_FLOAT_EQ(g.AtClamped(10, 10), 4.0f);
  EXPECT_FLOAT_EQ(g.AtClamped(0, 0), 1.0f);
}

}  // namespace
}  // namespace cbir::imaging
