#include "imaging/draw.h"

#include <gtest/gtest.h>

namespace cbir::imaging {
namespace {

constexpr Rgb kWhite{255, 255, 255};
constexpr Rgb kBlack{0, 0, 0};

int CountPixels(const Image& img, Rgb color) {
  int count = 0;
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      if (img.At(x, y) == color) ++count;
    }
  }
  return count;
}

TEST(DrawTest, HorizontalLine) {
  Image img(10, 10, kBlack);
  DrawLine(&img, Point{1, 5}, Point{8, 5}, kWhite);
  EXPECT_EQ(CountPixels(img, kWhite), 8);
  for (int x = 1; x <= 8; ++x) EXPECT_EQ(img.At(x, 5), kWhite);
}

TEST(DrawTest, DiagonalLineHitsEndpoints) {
  Image img(10, 10, kBlack);
  DrawLine(&img, Point{0, 0}, Point{9, 9}, kWhite);
  EXPECT_EQ(img.At(0, 0), kWhite);
  EXPECT_EQ(img.At(9, 9), kWhite);
  EXPECT_EQ(CountPixels(img, kWhite), 10);
}

TEST(DrawTest, LineClipsOutsideRaster) {
  Image img(4, 4, kBlack);
  DrawLine(&img, Point{-5, 2}, Point{10, 2}, kWhite);
  EXPECT_EQ(CountPixels(img, kWhite), 4);  // only the in-raster span
}

TEST(DrawTest, SinglePointLine) {
  Image img(3, 3, kBlack);
  DrawLine(&img, Point{1, 1}, Point{1, 1}, kWhite);
  EXPECT_EQ(CountPixels(img, kWhite), 1);
}

TEST(DrawTest, ThickLineWiderThanThin) {
  Image thin(20, 20, kBlack), thick(20, 20, kBlack);
  DrawLine(&thin, Point{2, 10}, Point{17, 10}, kWhite);
  DrawThickLine(&thick, Point{2, 10}, Point{17, 10}, 5, kWhite);
  EXPECT_GT(CountPixels(thick, kWhite), 2 * CountPixels(thin, kWhite));
}

TEST(DrawTest, FillCircleAreaApproximation) {
  Image img(41, 41, kBlack);
  FillCircle(&img, Point{20, 20}, 10, kWhite);
  const int area = CountPixels(img, kWhite);
  EXPECT_NEAR(area, 3.14159 * 10 * 10, 25);
  EXPECT_EQ(img.At(20, 20), kWhite);
  EXPECT_EQ(img.At(20, 9), kBlack);  // just outside radius 10 ring? inside=10
}

TEST(DrawTest, FillCircleNegativeRadiusIsNoop) {
  Image img(5, 5, kBlack);
  FillCircle(&img, Point{2, 2}, -1, kWhite);
  EXPECT_EQ(CountPixels(img, kWhite), 0);
}

TEST(DrawTest, CircleOutlineOnPerimeter) {
  Image img(21, 21, kBlack);
  DrawCircle(&img, Point{10, 10}, 5, kWhite);
  EXPECT_EQ(img.At(15, 10), kWhite);
  EXPECT_EQ(img.At(10, 15), kWhite);
  EXPECT_EQ(img.At(5, 10), kWhite);
  EXPECT_EQ(img.At(10, 10), kBlack);  // interior untouched
}

TEST(DrawTest, FillRectInclusiveAndNormalized) {
  Image img(10, 10, kBlack);
  // Corners given in "wrong" order still fill the same rect.
  FillRect(&img, Point{6, 7}, Point{2, 3}, kWhite);
  EXPECT_EQ(CountPixels(img, kWhite), 5 * 5);
  EXPECT_EQ(img.At(2, 3), kWhite);
  EXPECT_EQ(img.At(6, 7), kWhite);
  EXPECT_EQ(img.At(1, 3), kBlack);
}

TEST(DrawTest, FillPolygonTriangleArea) {
  Image img(30, 30, kBlack);
  FillPolygon(&img, {Point{0, 0}, Point{20, 0}, Point{0, 20}}, kWhite);
  // Right triangle, legs 20: area ~200.
  EXPECT_NEAR(CountPixels(img, kWhite), 200, 30);
}

TEST(DrawTest, FillPolygonDegenerateIsNoop) {
  Image img(10, 10, kBlack);
  FillPolygon(&img, {Point{1, 1}, Point{5, 5}}, kWhite);
  EXPECT_EQ(CountPixels(img, kWhite), 0);
}

TEST(DrawTest, VerticalGradientEndpoints) {
  Image img(3, 5, kBlack);
  FillVerticalGradient(&img, Rgb{0, 0, 0}, Rgb{200, 100, 50});
  EXPECT_EQ(img.At(1, 0), (Rgb{0, 0, 0}));
  EXPECT_EQ(img.At(1, 4), (Rgb{200, 100, 50}));
  // Middle row is interpolated.
  const Rgb mid = img.At(1, 2);
  EXPECT_NEAR(mid.r, 100, 2);
  EXPECT_NEAR(mid.g, 50, 2);
}

TEST(DrawTest, RadialGradientCenterAndEdge) {
  Image img(21, 21, kBlack);
  FillRadialGradient(&img, Point{10, 10}, 10, Rgb{255, 255, 255}, kBlack);
  EXPECT_EQ(img.At(10, 10), (Rgb{255, 255, 255}));
  EXPECT_EQ(img.At(0, 0), kBlack);  // beyond radius -> edge color
}

}  // namespace
}  // namespace cbir::imaging
