#include "imaging/ppm_io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace cbir::imaging {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(PpmIoTest, RoundTrip) {
  Image img(3, 2);
  img.Set(0, 0, Rgb{255, 0, 0});
  img.Set(1, 0, Rgb{0, 255, 0});
  img.Set(2, 0, Rgb{0, 0, 255});
  img.Set(0, 1, Rgb{10, 20, 30});

  const std::string path = TempPath("roundtrip.ppm");
  ASSERT_TRUE(WritePpm(img, path).ok());

  auto loaded = ReadPpm(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->width(), 3);
  EXPECT_EQ(loaded->height(), 2);
  EXPECT_EQ(loaded->data(), img.data());
  std::remove(path.c_str());
}

TEST(PpmIoTest, WriteEmptyImageFails) {
  EXPECT_FALSE(WritePpm(Image(), TempPath("empty.ppm")).ok());
}

TEST(PpmIoTest, ReadMissingFileFails) {
  auto r = ReadPpm(TempPath("does-not-exist.ppm"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(PpmIoTest, ReadRejectsWrongMagic) {
  const std::string path = TempPath("bad-magic.ppm");
  std::ofstream(path) << "P3\n1 1\n255\n0 0 0\n";
  auto r = ReadPpm(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(PpmIoTest, ReadSkipsComments) {
  const std::string path = TempPath("comments.ppm");
  {
    std::ofstream ofs(path, std::ios::binary);
    ofs << "P6\n# a comment line\n2 # width trailing\n1\n255\n";
    const char pixels[] = {10, 20, 30, 40, 50, 60};
    ofs.write(pixels, sizeof(pixels));
  }
  auto r = ReadPpm(path);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->width(), 2);
  EXPECT_EQ(r->At(0, 0), (Rgb{10, 20, 30}));
  std::remove(path.c_str());
}

TEST(PpmIoTest, ReadRejectsTruncatedPayload) {
  const std::string path = TempPath("truncated.ppm");
  {
    std::ofstream ofs(path, std::ios::binary);
    ofs << "P6\n4 4\n255\n";
    ofs << "only-a-few-bytes";
  }
  auto r = ReadPpm(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(PpmIoTest, ReadRejectsNonstandardMaxval) {
  const std::string path = TempPath("maxval.ppm");
  std::ofstream(path, std::ios::binary) << "P6\n1 1\n65535\n";
  auto r = ReadPpm(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotImplemented);
  std::remove(path.c_str());
}

TEST(PgmIoTest, WritesClampedGray) {
  GrayImage g(2, 1);
  g.Set(0, 0, -0.5f);  // clamps to 0
  g.Set(1, 0, 2.0f);   // clamps to 1
  const std::string path = TempPath("gray.pgm");
  ASSERT_TRUE(WritePgm(g, path).ok());
  std::ifstream ifs(path, std::ios::binary);
  std::string header;
  ifs >> header;
  EXPECT_EQ(header, "P5");
  int w, h, maxval;
  ifs >> w >> h >> maxval;
  EXPECT_EQ(w, 2);
  EXPECT_EQ(h, 1);
  EXPECT_EQ(maxval, 255);
  ifs.get();  // single whitespace after maxval
  EXPECT_EQ(ifs.get(), 0);
  EXPECT_EQ(ifs.get(), 255);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cbir::imaging
