#include "imaging/color.h"

#include <cmath>

#include <gtest/gtest.h>

namespace cbir::imaging {
namespace {

TEST(ColorTest, PrimariesToHsv) {
  const Hsv red = RgbToHsv(Rgb{255, 0, 0});
  EXPECT_NEAR(red.h, 0.0, 1e-9);
  EXPECT_NEAR(red.s, 1.0, 1e-9);
  EXPECT_NEAR(red.v, 1.0, 1e-9);

  const Hsv green = RgbToHsv(Rgb{0, 255, 0});
  EXPECT_NEAR(green.h, 120.0, 1e-9);

  const Hsv blue = RgbToHsv(Rgb{0, 0, 255});
  EXPECT_NEAR(blue.h, 240.0, 1e-9);
}

TEST(ColorTest, GraysHaveZeroSaturation) {
  for (uint8_t v : {uint8_t{0}, uint8_t{128}, uint8_t{255}}) {
    const Hsv hsv = RgbToHsv(Rgb{v, v, v});
    EXPECT_DOUBLE_EQ(hsv.s, 0.0);
    EXPECT_DOUBLE_EQ(hsv.h, 0.0);
    EXPECT_NEAR(hsv.v, v / 255.0, 1e-9);
  }
}

TEST(ColorTest, HsvToRgbPrimaries) {
  EXPECT_EQ(HsvToRgb(Hsv{0, 1, 1}), (Rgb{255, 0, 0}));
  EXPECT_EQ(HsvToRgb(Hsv{120, 1, 1}), (Rgb{0, 255, 0}));
  EXPECT_EQ(HsvToRgb(Hsv{240, 1, 1}), (Rgb{0, 0, 255}));
  EXPECT_EQ(HsvToRgb(Hsv{60, 1, 1}), (Rgb{255, 255, 0}));
}

TEST(ColorTest, HsvHueWrapsAndClamps) {
  EXPECT_EQ(HsvToRgb(Hsv{360, 1, 1}), HsvToRgb(Hsv{0, 1, 1}));
  EXPECT_EQ(HsvToRgb(Hsv{-120, 1, 1}), HsvToRgb(Hsv{240, 1, 1}));
  EXPECT_EQ(HsvToRgb(Hsv{0, 2.0, 2.0}), (Rgb{255, 0, 0}));
}

TEST(ColorTest, RoundTripIsNearIdentity) {
  // Quantization bounds the round-trip error to about 1/255 per channel.
  for (int r = 0; r < 256; r += 37) {
    for (int g = 0; g < 256; g += 41) {
      for (int b = 0; b < 256; b += 43) {
        const Rgb in{static_cast<uint8_t>(r), static_cast<uint8_t>(g),
                     static_cast<uint8_t>(b)};
        const Rgb out = HsvToRgb(RgbToHsv(in));
        EXPECT_NEAR(out.r, in.r, 2) << r << "," << g << "," << b;
        EXPECT_NEAR(out.g, in.g, 2);
        EXPECT_NEAR(out.b, in.b, 2);
      }
    }
  }
}

TEST(ColorTest, LumaWeights) {
  EXPECT_NEAR(Luma(Rgb{255, 255, 255}), 1.0, 1e-9);
  EXPECT_NEAR(Luma(Rgb{0, 0, 0}), 0.0, 1e-9);
  EXPECT_NEAR(Luma(Rgb{255, 0, 0}), 0.299, 1e-9);
  EXPECT_NEAR(Luma(Rgb{0, 255, 0}), 0.587, 1e-9);
  EXPECT_NEAR(Luma(Rgb{0, 0, 255}), 0.114, 1e-9);
}

TEST(ColorTest, ToGray) {
  Image img(2, 1);
  img.Set(0, 0, Rgb{255, 255, 255});
  img.Set(1, 0, Rgb{0, 0, 0});
  const GrayImage gray = ToGray(img);
  EXPECT_NEAR(gray.At(0, 0), 1.0f, 1e-6);
  EXPECT_NEAR(gray.At(1, 0), 0.0f, 1e-6);
}

}  // namespace
}  // namespace cbir::imaging
