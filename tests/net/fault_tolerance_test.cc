// Fault-tolerance gates for the serving stack: bounded connects, RPC
// deadlines, idle reaping, deadline shedding, graceful drain, and the
// fault-injection + retry machinery that turns injected network chaos into
// clean recoveries.
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "api/codec.h"
#include "api/dispatcher.h"
#include "core/feedback_scheme.h"
#include "logdb/simulated_user.h"
#include "net/fault_injector.h"
#include "net/retrying_client.h"
#include "net/socket.h"
#include "net/tcp_client.h"
#include "net/tcp_server.h"
#include "retrieval/synthetic_features.h"
#include "serve/retrieval_service.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace cbir::net {
namespace {

constexpr int kRounds = 2;
constexpr int kJudgments = 6;
constexpr int kDepth = 15 + kRounds * kJudgments + 1;

/// Shared serving data (the expensive part); each test builds whatever
/// server it needs on top, because most tests here want specific
/// TcpServerOptions or ServiceOptions.
class FaultToleranceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new retrieval::ImageDatabase(retrieval::ClusteredDatabase(400, 23));
    retrieval::IndexOptions index_options;
    index_options.mode = retrieval::IndexMode::kSignature;
    db_->BuildIndex(index_options);
    logdb::LogCollectionOptions log_options;
    log_options.num_sessions = 40;
    log_options.session_size = 12;
    log_options.seed = 3;
    store_ = new logdb::LogStore(
        logdb::CollectLogs(db_->features(), db_->categories(), log_options));
    log_features_ = new la::Matrix(
        store_->BuildMatrix(db_->num_images()).ToDenseMatrix());
  }

  static void TearDownTestSuite() {
    delete log_features_;
    log_features_ = nullptr;
    delete store_;
    store_ = nullptr;
    delete db_;
    db_ = nullptr;
  }

  static std::unique_ptr<serve::RetrievalService> MakeService(
      serve::ServiceOptions options) {
    auto service = serve::RetrievalService::Create(
        db_, log_features_, store_,
        core::MakeDefaultSchemeOptions(*db_, log_features_), options);
    EXPECT_TRUE(service.ok()) << service.status();
    return std::move(service).value();
  }

  /// Deterministic judgment stream: the next feedback round for the current
  /// ranking. Two transports replaying with the same rng state produce the
  /// same judgments iff their rankings are identical.
  static std::vector<logdb::LogEntry> JudgeRound(
      const std::vector<int>& ranking, std::unordered_set<int>* judged,
      int category, Rng* rng) {
    logdb::SimulatedUser user(db_->categories(), logdb::UserModel{0.1});
    std::vector<logdb::LogEntry> round;
    for (int id : ranking) {
      if (static_cast<int>(round.size()) >= kJudgments) break;
      if (!judged->insert(id).second) continue;
      round.push_back(logdb::LogEntry{id, user.Judge(id, category, rng)});
    }
    return round;
  }

  static retrieval::ImageDatabase* db_;
  static logdb::LogStore* store_;
  static la::Matrix* log_features_;
};

retrieval::ImageDatabase* FaultToleranceTest::db_ = nullptr;
logdb::LogStore* FaultToleranceTest::store_ = nullptr;
la::Matrix* FaultToleranceTest::log_features_ = nullptr;

/// Service + dispatcher + server bundle most tests start from.
struct Stack {
  std::unique_ptr<serve::RetrievalService> service;
  std::unique_ptr<api::Dispatcher> dispatcher;
  std::unique_ptr<TcpServer> server;
};

Stack StartStack(std::unique_ptr<serve::RetrievalService> service,
                 TcpServerOptions server_options) {
  Stack stack;
  stack.service = std::move(service);
  stack.dispatcher = std::make_unique<api::Dispatcher>(stack.service.get());
  stack.server =
      std::make_unique<TcpServer>(stack.dispatcher.get(), server_options);
  EXPECT_TRUE(stack.server->Start().ok());
  return stack;
}

// -------------------------------------------------------- socket deadlines --

TEST_F(FaultToleranceTest, ConnectTimeoutIsBounded) {
  // Manufacture a local blackhole: a listener that never calls Accept with
  // a backlog of 1. Once the kernel's accept queue fills, further SYNs are
  // silently dropped (default tcp_abort_on_overflow=0) and a plain connect
  // would sit in the kernel's minutes-long SYN retry schedule. The bounded
  // connect must come back quickly with a typed error instead.
  auto listener = Socket::ListenTcp("127.0.0.1", 0, /*backlog=*/1);
  ASSERT_TRUE(listener.ok()) << listener.status();
  std::vector<Socket> queue_fillers;
  bool timed_out = false;
  for (int i = 0; i < 32 && !timed_out; ++i) {
    const Stopwatch watch;
    auto socket =
        Socket::ConnectTcp("127.0.0.1", listener->local_port(),
                           /*timeout_ms=*/300);
    const double elapsed = watch.ElapsedSeconds();
    if (socket.ok()) {
      queue_fillers.push_back(std::move(socket).value());
      continue;
    }
    timed_out = true;
    EXPECT_TRUE(socket.status().code() == StatusCode::kDeadlineExceeded ||
                socket.status().code() == StatusCode::kIoError)
        << socket.status();
    EXPECT_LT(elapsed, 5.0) << "connect was not bounded";
  }
  // A backlog of 1 caps the accept queue at a handful of connections; 32
  // attempts not overflowing it means the kernel ignored the backlog.
  EXPECT_TRUE(timed_out) << "accept queue never overflowed after "
                         << queue_fillers.size() << " connects";
}

TEST_F(FaultToleranceTest, SilentServerBecomesDeadlineExceeded) {
  // A listener that accepts and then says nothing — the pathological peer a
  // read deadline exists for.
  auto listener = Socket::ListenTcp("127.0.0.1", 0, 4);
  ASSERT_TRUE(listener.ok()) << listener.status();
  std::atomic<bool> stop{false};
  std::thread acceptor([&] {
    std::vector<Socket> held;
    while (!stop.load()) {
      auto conn = listener->Accept();
      if (!conn.ok()) break;
      held.push_back(std::move(conn).value());  // hold open, never answer
    }
  });

  auto client = TcpClient::Connect("127.0.0.1", listener->local_port());
  ASSERT_TRUE(client.ok()) << client.status();
  ASSERT_TRUE(client->ArmDeadlines(150).ok());
  const Stopwatch watch;
  auto ranking = client->Query(1);
  EXPECT_EQ(ranking.status().code(), StatusCode::kDeadlineExceeded)
      << ranking.status();
  EXPECT_LT(watch.ElapsedSeconds(), 5.0);

  stop.store(true);
  listener->Shutdown();
  acceptor.join();
}

// ----------------------------------------------------------- idle reaping --

TEST_F(FaultToleranceTest, IdleConnectionsAreReaped) {
  serve::ServiceOptions options;
  options.scheme = "Euclidean";
  TcpServerOptions server_options;
  server_options.idle_timeout_ms = 100;
  Stack stack = StartStack(MakeService(options), server_options);

  auto client = TcpClient::Connect("127.0.0.1", stack.server->port());
  ASSERT_TRUE(client.ok());
  const uint64_t sid =
      client->StartSession(api::QuerySpec::ById(1)).value();
  ASSERT_TRUE(client->Query(sid).ok());

  // Go quiet past the idle timeout: the server drops the connection.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (stack.server->stats().connections_reaped_idle == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(stack.server->stats().connections_reaped_idle, 1u);
  // The client finds out on its next use, with a clean connection error.
  auto after = client->Query(sid);
  EXPECT_FALSE(after.ok());

  // An active client with the same timeout is never reaped mid-burst.
  auto busy = TcpClient::Connect("127.0.0.1", stack.server->port());
  ASSERT_TRUE(busy.ok());
  const uint64_t sid2 = busy->StartSession(api::QuerySpec::ById(2)).value();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(busy->Query(sid2).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  EXPECT_TRUE(busy->EndSession(sid2).ok());
  stack.server->Stop();
}

// ------------------------------------------------------ deadline shedding --

TEST_F(FaultToleranceTest, ExpiredDeadlineIsShedWithMatchingResponseType) {
  serve::ServiceOptions options;
  options.scheme = "Euclidean";
  Stack stack = StartStack(MakeService(options), TcpServerOptions{});
  auto client = TcpClient::Connect("127.0.0.1", stack.server->port());
  ASSERT_TRUE(client.ok());
  const uint64_t sid =
      client->StartSession(api::QuerySpec::ById(3)).value();

  // deadline_ms = 0: expired on arrival, the unambiguous cancel. The shed
  // response must be a QueryResponse (not a generic error frame) so
  // pipelined clients keep request/response pairing.
  api::QueryRequest query;
  query.session_id = sid;
  auto response =
      client->Call(api::Request(query), api::RequestEnvelope::WithDeadline(0));
  ASSERT_TRUE(response.ok()) << response.status();
  auto* typed = std::get_if<api::QueryResponse>(&response.value());
  ASSERT_NE(typed, nullptr);
  EXPECT_EQ(StatusCodeFromWireCode(typed->status.code),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(stack.service->stats().requests_shed_deadline, 1u);

  // A sane deadline on the same connection serves normally.
  auto ok_response = client->Call(api::Request(query),
                                  api::RequestEnvelope::WithDeadline(30000));
  ASSERT_TRUE(ok_response.ok());
  auto* served = std::get_if<api::QueryResponse>(&ok_response.value());
  ASSERT_NE(served, nullptr);
  EXPECT_TRUE(api::FromWireStatus(served->status).ok());
  EXPECT_TRUE(client->EndSession(sid).ok());
  stack.server->Stop();
}

// -------------------------------------------------------- graceful drain --

TEST_F(FaultToleranceTest, StopNeverTearsAResponseFrame) {
  serve::ServiceOptions options;
  options.scheme = "RF-SVM";
  options.candidate_depth = kDepth;
  Stack stack = StartStack(MakeService(options), TcpServerOptions{});
  auto client = TcpClient::Connect("127.0.0.1", stack.server->port());
  ASSERT_TRUE(client.ok());
  const uint64_t sid =
      client->StartSession(api::QuerySpec::ById(5)).value();

  // Pipeline a burst, then stop the server while responses are in flight.
  constexpr int kBurst = 64;
  for (int i = 0; i < kBurst; ++i) {
    api::QueryRequest query;
    query.session_id = sid;
    query.k = 1 + i % kDepth;
    ASSERT_TRUE(client->Send(api::Request(query)).ok());
  }
  std::thread stopper([&] { stack.server->Stop(); });

  // Every response that arrives must be a complete frame; the cut, when it
  // comes, must be a clean EOF at a frame boundary — a half-written frame
  // would decode garbage or die mid-body.
  int complete = 0;
  for (int i = 0; i < kBurst; ++i) {
    Result<api::Response> response = client->Receive();
    if (!response.ok()) break;
    auto* typed = std::get_if<api::QueryResponse>(&response.value());
    ASSERT_NE(typed, nullptr) << "mid-stream frame corrupted at " << i;
    ++complete;
  }
  stopper.join();
  // At least the response being written when Stop() hit must have finished.
  EXPECT_GE(complete, 1);
}

// ------------------------------------------- chaos + retry: the full loop --

TEST_F(FaultToleranceTest, RetryingClientMasksInjectedFaults) {
  serve::ServiceOptions options;
  options.scheme = "RF-SVM";
  options.candidate_depth = kDepth;
  Stack stack = StartStack(MakeService(options), TcpServerOptions{});

  // No bit flips here: those can corrupt a frame into a different *valid*
  // request (no frame CRC by design) and poison the session — covered by
  // the load driver's --chaos accounting, not a determinism test.
  FaultInjectorOptions chaos;
  chaos.seed = 99;
  chaos.delay_probability = 0.1;
  chaos.max_delay_ms = 2;
  chaos.drop_probability = 0.08;
  chaos.reset_probability = 0.05;
  chaos.partial_write_probability = 0.05;
  FaultInjector injector(chaos);

  RetryOptions retry;
  retry.max_attempts = 10;
  retry.initial_backoff_ms = 2;
  retry.max_backoff_ms = 40;
  retry.connect_timeout_ms = 2000;
  retry.rpc_timeout_ms = 400;
  retry.seed = 7;
  RetryingClient chaotic("127.0.0.1", stack.server->port(), retry, &injector);
  TcpClient control = [&] {
    auto c = TcpClient::Connect("127.0.0.1", stack.server->port());
    EXPECT_TRUE(c.ok());
    return std::move(c).value();
  }();

  // Replay the same sessions through the chaos transport and a clean one:
  // identical judgment streams must yield identical rankings round for
  // round — drops, resets, and partial writes are invisible to the caller
  // because retried Feedbacks (same seq) apply at most once.
  for (const int query_id : {4, 111}) {
    SCOPED_TRACE(query_id);
    const int category = db_->category(query_id);
    auto chaotic_sid = chaotic.StartSession(api::QuerySpec::ById(query_id));
    auto control_sid =
        control.StartSession(api::QuerySpec::ById(query_id));
    ASSERT_TRUE(chaotic_sid.ok()) << chaotic_sid.status();
    ASSERT_TRUE(control_sid.ok());
    auto chaos_ranking = chaotic.Query(chaotic_sid.value(), kDepth);
    auto control_ranking = control.Query(control_sid.value(), kDepth);
    ASSERT_TRUE(chaos_ranking.ok()) << chaos_ranking.status();
    ASSERT_TRUE(control_ranking.ok());
    ASSERT_EQ(chaos_ranking.value(), control_ranking.value());
    std::unordered_set<int> judged{query_id};
    Rng rng(uint64_t(query_id) * 31 + 1);
    for (int r = 0; r < kRounds; ++r) {
      SCOPED_TRACE(r);
      const std::vector<logdb::LogEntry> round =
          JudgeRound(chaos_ranking.value(), &judged, category, &rng);
      chaos_ranking = chaotic.Feedback(chaotic_sid.value(), round, kDepth);
      control_ranking =
          control.Feedback(control_sid.value(), round, kDepth);
      ASSERT_TRUE(chaos_ranking.ok()) << chaos_ranking.status();
      ASSERT_TRUE(control_ranking.ok());
      EXPECT_EQ(chaos_ranking.value(), control_ranking.value());
    }
    EXPECT_TRUE(chaotic.EndSession(chaotic_sid.value()).ok());
    EXPECT_TRUE(control.EndSession(control_sid.value()).ok());
  }
  // The chaos schedule must actually have fired for this test to mean
  // anything.
  EXPECT_GT(injector.stats().faults(), 0u);
  EXPECT_EQ(chaotic.stats().exhausted, 0u);
  stack.server->Stop();
}

TEST_F(FaultToleranceTest, DuplicateFeedbackOverWireAppliesOnce) {
  serve::ServiceOptions options;
  options.scheme = "RF-SVM";
  options.candidate_depth = kDepth;
  Stack stack = StartStack(MakeService(options), TcpServerOptions{});
  auto client = TcpClient::Connect("127.0.0.1", stack.server->port());
  auto witness = TcpClient::Connect("127.0.0.1", stack.server->port());
  ASSERT_TRUE(client.ok() && witness.ok());

  // The retry-that-lost-its-reply scenario, hand-rolled: the same Feedback
  // frame (same seq) lands twice. A parallel witness session applying the
  // round once must end in the identical state.
  const int query_id = 42;
  const uint64_t sid =
      client->StartSession(api::QuerySpec::ById(query_id)).value();
  const uint64_t wid =
      witness->StartSession(api::QuerySpec::ById(query_id)).value();
  const std::vector<int> ranking = client->Query(sid, kDepth).value();
  ASSERT_EQ(witness->Query(wid, kDepth).value(), ranking);

  const std::vector<logdb::LogEntry> round = {
      logdb::LogEntry{ranking[0], 1}, logdb::LogEntry{ranking[1], -1}};
  const std::vector<int> first =
      client->Feedback(sid, round, kDepth, /*seq=*/1).value();
  const std::vector<int> duplicate =
      client->Feedback(sid, round, kDepth, /*seq=*/1).value();
  EXPECT_EQ(duplicate, first);  // replayed from the idempotency cache

  const std::vector<int> once =
      witness->Feedback(wid, round, kDepth, /*seq=*/1).value();
  EXPECT_EQ(first, once);

  // Next round from the shared post-round-1 state: still identical, so the
  // duplicate demonstrably did not advance the duplicated session twice.
  const std::vector<logdb::LogEntry> round2 = {
      logdb::LogEntry{first[2], 1}};
  EXPECT_EQ(client->Feedback(sid, round2, kDepth, /*seq=*/2).value(),
            witness->Feedback(wid, round2, kDepth, /*seq=*/2).value());
  EXPECT_GE(stack.service->stats().feedback_replays, 1u);
  EXPECT_TRUE(client->EndSession(sid).ok());
  EXPECT_TRUE(witness->EndSession(wid).ok());
  stack.server->Stop();
}

// v1 clients (this repo's previous wire format) keep working against a v2
// server: the frame a pre-envelope client sends is byte-identical to what
// EncodeRequest emits with no envelope.
TEST_F(FaultToleranceTest, V1ClientInteroperatesWithV2Server) {
  serve::ServiceOptions options;
  options.scheme = "Euclidean";
  Stack stack = StartStack(MakeService(options), TcpServerOptions{});
  auto raw = Socket::ConnectTcp("127.0.0.1", stack.server->port());
  ASSERT_TRUE(raw.ok());

  api::StartSessionRequest start;
  start.query = api::QuerySpec::ById(8);
  std::vector<uint8_t> frame = api::EncodeRequest(api::Request(start));
  ASSERT_EQ(frame[4], api::kProtocolVersionV1);  // genuinely a v1 frame
  ASSERT_TRUE(raw->WriteAll(frame.data(), frame.size()).ok());

  std::vector<uint8_t> header(api::kFrameHeaderBytes);
  ASSERT_TRUE(raw->ReadFully(header.data(), header.size()).ok());
  auto reply = api::DecodeFrameHeader(header.data(), header.size());
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->version, api::kProtocolVersionV1);  // reply also v1
  std::vector<uint8_t> body(reply->body_size);
  ASSERT_TRUE(raw->ReadFully(body.data(), body.size()).ok());
  auto response = api::DecodeResponseBody(*reply, body.data(), body.size());
  ASSERT_TRUE(response.ok());
  const auto* started =
      std::get_if<api::StartSessionResponse>(&response.value());
  ASSERT_NE(started, nullptr);
  EXPECT_TRUE(api::FromWireStatus(started->status).ok());
  EXPECT_NE(started->session_id, 0u);
  stack.server->Stop();
}

}  // namespace
}  // namespace cbir::net
