#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "api/codec.h"
#include "api/dispatcher.h"
#include "core/feedback_scheme.h"
#include "logdb/simulated_user.h"
#include "net/tcp_client.h"
#include "net/tcp_server.h"
#include "retrieval/synthetic_features.h"
#include "serve/retrieval_service.h"
#include "util/rng.h"

namespace cbir::net {
namespace {

constexpr int kRounds = 2;
constexpr int kJudgments = 8;
constexpr int kDepth = 20 + kRounds * kJudgments + 1;

/// One shared serving stack (clustered corpus + signature index + feedback
/// log + RF-SVM service) behind one TcpServer on an ephemeral loopback
/// port. Sessions are independent, so remote and in-process sessions can be
/// driven against the same service and compared.
class TcpServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new retrieval::ImageDatabase(retrieval::ClusteredDatabase(600, 11));
    retrieval::IndexOptions index_options;
    index_options.mode = retrieval::IndexMode::kSignature;
    db_->BuildIndex(index_options);

    logdb::LogCollectionOptions log_options;
    log_options.num_sessions = 60;
    log_options.session_size = 15;
    log_options.seed = 13;
    store_ = new logdb::LogStore(
        logdb::CollectLogs(db_->features(), db_->categories(), log_options));
    log_features_ = new la::Matrix(
        store_->BuildMatrix(db_->num_images()).ToDenseMatrix());

    serve::ServiceOptions options;
    options.scheme = "RF-SVM";
    options.candidate_depth = kDepth;
    auto service = serve::RetrievalService::Create(
        db_, log_features_, store_,
        core::MakeDefaultSchemeOptions(*db_, log_features_), options);
    ASSERT_TRUE(service.ok()) << service.status();
    service_ = std::move(service).value().release();
    dispatcher_ = new api::Dispatcher(service_);
    server_ = new TcpServer(dispatcher_, TcpServerOptions{});
    ASSERT_TRUE(server_->Start().ok());
  }

  static void TearDownTestSuite() {
    server_->Stop();
    delete server_;
    server_ = nullptr;
    delete dispatcher_;
    dispatcher_ = nullptr;
    delete service_;
    service_ = nullptr;
    delete log_features_;
    log_features_ = nullptr;
    delete store_;
    store_ = nullptr;
    delete db_;
    db_ = nullptr;
  }

  static TcpClient MustConnect() {
    auto client = TcpClient::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status();
    return std::move(client).value();
  }

  /// Replays one full feedback session (deterministic judgments from
  /// `seed`) through `start`/`query`/`feedback` callables and returns the
  /// ranking after every round (round 0 = first retrieval). Judgments are
  /// derived from the evolving ranking itself, so two transports produce
  /// identical judgment streams iff their rankings are identical.
  template <typename StartFn, typename QueryFn, typename FeedbackFn,
            typename EndFn>
  static std::vector<std::vector<int>> ReplaySession(
      int query_id, uint64_t seed, StartFn start, QueryFn query,
      FeedbackFn feedback, EndFn end) {
    logdb::SimulatedUser user(db_->categories(), logdb::UserModel{0.1});
    Rng rng(seed);
    std::vector<std::vector<int>> rankings;
    const uint64_t sid = start();
    rankings.push_back(query(sid, kDepth));
    std::unordered_set<int> judged{query_id};
    const int category = db_->category(query_id);
    for (int r = 0; r < kRounds; ++r) {
      std::vector<logdb::LogEntry> round;
      for (int id : rankings.back()) {
        if (static_cast<int>(round.size()) >= kJudgments) break;
        if (!judged.insert(id).second) continue;
        round.push_back(logdb::LogEntry{id, user.Judge(id, category, &rng)});
      }
      rankings.push_back(feedback(sid, round, kDepth));
    }
    end(sid);
    return rankings;
  }

  static std::vector<std::vector<int>> ReplayInProcess(int query_id,
                                                       uint64_t seed) {
    return ReplaySession(
        query_id, seed,
        [&] { return service_->StartSession(query_id).value(); },
        [&](uint64_t sid, int k) { return service_->Query(sid, k).value(); },
        [&](uint64_t sid, const std::vector<logdb::LogEntry>& round, int k) {
          return service_->Feedback(sid, round, k).value();
        },
        [&](uint64_t sid) { EXPECT_TRUE(service_->EndSession(sid).ok()); });
  }

  static std::vector<std::vector<int>> ReplayRemote(TcpClient& client,
                                                    int query_id,
                                                    uint64_t seed) {
    return ReplaySession(
        query_id, seed,
        [&] {
          return client.StartSession(api::QuerySpec::ById(query_id)).value();
        },
        [&](uint64_t sid, int k) { return client.Query(sid, k).value(); },
        [&](uint64_t sid, const std::vector<logdb::LogEntry>& round, int k) {
          return client.Feedback(sid, round, k).value();
        },
        [&](uint64_t sid) { EXPECT_TRUE(client.EndSession(sid).ok()); });
  }

  static retrieval::ImageDatabase* db_;
  static logdb::LogStore* store_;
  static la::Matrix* log_features_;
  static serve::RetrievalService* service_;
  static api::Dispatcher* dispatcher_;
  static TcpServer* server_;
};

retrieval::ImageDatabase* TcpServiceTest::db_ = nullptr;
logdb::LogStore* TcpServiceTest::store_ = nullptr;
la::Matrix* TcpServiceTest::log_features_ = nullptr;
serve::RetrievalService* TcpServiceTest::service_ = nullptr;
api::Dispatcher* TcpServiceTest::dispatcher_ = nullptr;
TcpServer* TcpServiceTest::server_ = nullptr;

// The acceptance-critical gate: a session driven over loopback TCP is
// byte-identical, round for round, to the same session driven through the
// in-process service — one shared Dispatcher code path, zero drift.
TEST_F(TcpServiceTest, RemoteSessionIsByteIdenticalToInProcess) {
  TcpClient client = MustConnect();
  for (const int query_id : {3, 77, 256}) {
    SCOPED_TRACE(query_id);
    const auto local = ReplayInProcess(query_id, 41);
    const auto remote = ReplayRemote(client, query_id, 41);
    ASSERT_EQ(local.size(), remote.size());
    for (size_t round = 0; round < local.size(); ++round) {
      SCOPED_TRACE(round);
      EXPECT_EQ(local[round], remote[round]);  // full vectors, byte-identical
    }
  }
}

// Second acceptance gate: a QuerySpec{feature vector} session carrying a
// corpus image's feature reproduces the matching QuerySpec{corpus id}
// session's ranking. The only permitted difference is the query image
// itself: the external session has no corpus row to exclude, so the
// identical-feature image appears in its ranking (first at round 0).
TEST_F(TcpServiceTest, FeatureVectorSessionReproducesCorpusIdSession) {
  TcpClient client = MustConnect();
  const int query_id = 123;
  logdb::SimulatedUser user(db_->categories(), logdb::UserModel{0.1});
  const int category = db_->category(query_id);

  const uint64_t by_id =
      client.StartSession(api::QuerySpec::ById(query_id)).value();
  const uint64_t by_feature =
      client.StartSession(api::QuerySpec::ByFeature(db_->feature(query_id)))
          .value();

  auto strip_query = [&](std::vector<int> ranking) {
    ranking.erase(std::remove(ranking.begin(), ranking.end(), query_id),
                  ranking.end());
    return ranking;
  };

  std::vector<int> id_ranking = client.Query(by_id, kDepth).value();
  std::vector<int> feature_ranking = client.Query(by_feature, kDepth).value();
  // Round 0: the identical-feature corpus image has distance zero, so it
  // leads the external session's ranking.
  ASSERT_FALSE(feature_ranking.empty());
  EXPECT_EQ(feature_ranking.front(), query_id);
  // Stripping may shorten the fixed-size top-k by one (when the query image
  // sat inside it); the surviving prefix must match the by-id session
  // exactly.
  std::vector<int> stripped = strip_query(feature_ranking);
  ASSERT_GE(stripped.size() + 1, id_ranking.size());
  std::vector<int> expected = id_ranking;
  expected.resize(std::min(stripped.size(), expected.size()));
  stripped.resize(expected.size());
  EXPECT_EQ(stripped, expected);

  // Feedback rounds: identical judgments (never the query image — the by-id
  // session would silently drop it) must produce the same re-ranking modulo
  // the query image's own position.
  Rng rng(29);
  std::unordered_set<int> judged{query_id};
  for (int r = 0; r < kRounds; ++r) {
    SCOPED_TRACE(r);
    std::vector<logdb::LogEntry> round;
    for (int id : id_ranking) {
      if (static_cast<int>(round.size()) >= kJudgments) break;
      if (!judged.insert(id).second) continue;
      round.push_back(logdb::LogEntry{id, user.Judge(id, category, &rng)});
    }
    id_ranking = client.Feedback(by_id, round, kDepth).value();
    feature_ranking = client.Feedback(by_feature, round, kDepth).value();
    std::vector<int> stripped_round = strip_query(feature_ranking);
    ASSERT_GE(stripped_round.size() + 1, id_ranking.size());
    std::vector<int> expected_round = id_ranking;
    expected_round.resize(
        std::min(stripped_round.size(), expected_round.size()));
    stripped_round.resize(expected_round.size());
    EXPECT_EQ(stripped_round, expected_round);
  }
  EXPECT_TRUE(client.EndSession(by_id).ok());
  EXPECT_TRUE(client.EndSession(by_feature).ok());
}

TEST_F(TcpServiceTest, PipelinedRequestsAnswerInOrder) {
  TcpClient client = MustConnect();
  const uint64_t sid =
      client.StartSession(api::QuerySpec::ById(9)).value();
  // Send a burst of requests before reading a single response; the server
  // must answer strictly in order.
  constexpr int kBurst = 16;
  for (int i = 0; i < kBurst; ++i) {
    api::QueryRequest query;
    query.session_id = sid;
    query.k = i + 1;
    ASSERT_TRUE(client.Send(api::Request(query)).ok());
  }
  ASSERT_TRUE(client.Send(api::Request(api::StatsRequest{})).ok());
  for (int i = 0; i < kBurst; ++i) {
    Result<api::Response> response = client.Receive();
    ASSERT_TRUE(response.ok()) << response.status();
    auto* ranked = std::get_if<api::QueryResponse>(&response.value());
    ASSERT_NE(ranked, nullptr) << "response " << i << " out of order";
    EXPECT_EQ(ranked->ranking.size(), static_cast<size_t>(i + 1));
  }
  Result<api::Response> stats = client.Receive();
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(std::holds_alternative<api::StatsResponse>(stats.value()));
  EXPECT_TRUE(client.EndSession(sid).ok());
}

TEST_F(TcpServiceTest, RemoteErrorsAreTypedLikeInProcessOnes) {
  TcpClient client = MustConnect();
  EXPECT_EQ(client.StartSession(api::QuerySpec::ById(-3)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      client.StartSession(api::QuerySpec::ByFeature({1.0, 2.0})).status()
          .code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(client.Query(0xDEAD).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(client.EndSession(0xDEAD).code(), StatusCode::kNotFound);

  const uint64_t sid = client.StartSession(api::QuerySpec::ById(2)).value();
  EXPECT_TRUE(client.EndSession(sid).ok());
  // Double end: NotFound over the wire, exactly like the direct call.
  EXPECT_EQ(client.EndSession(sid).code(), StatusCode::kNotFound);
}

TEST_F(TcpServiceTest, MalformedBytesGetTypedErrorAndServerSurvives) {
  // Hand-roll a connection and send garbage that is not a valid frame.
  auto raw = Socket::ConnectTcp("127.0.0.1", server_->port());
  ASSERT_TRUE(raw.ok());
  const char garbage[] = "GET / HTTP/1.1\r\n\r\n";  // wrong protocol entirely
  ASSERT_TRUE(raw->WriteAll(garbage, sizeof(garbage) - 1).ok());

  // The server answers with an ErrorResponse frame, then closes.
  std::vector<uint8_t> header(api::kFrameHeaderBytes);
  ASSERT_TRUE(raw->ReadFully(header.data(), header.size()).ok());
  auto frame = api::DecodeFrameHeader(header.data(), header.size());
  ASSERT_TRUE(frame.ok()) << frame.status();
  ASSERT_EQ(frame->type, api::MessageType::kErrorResponse);
  std::vector<uint8_t> body(frame->body_size);
  ASSERT_TRUE(raw->ReadFully(body.data(), body.size()).ok());
  auto response = api::DecodeResponseBody(*frame, body.data(), body.size());
  ASSERT_TRUE(response.ok());
  const auto& error = std::get<api::ErrorResponse>(response.value());
  EXPECT_FALSE(error.status.ok());

  // Connection is closed after the error...
  bool clean_eof = false;
  ASSERT_TRUE(
      raw->ReadFully(header.data(), header.size(), &clean_eof).ok());
  EXPECT_TRUE(clean_eof);

  // ...and the server keeps serving fresh connections.
  TcpClient client = MustConnect();
  const uint64_t sid = client.StartSession(api::QuerySpec::ById(1)).value();
  EXPECT_TRUE(client.Query(sid).ok());
  EXPECT_TRUE(client.EndSession(sid).ok());
  EXPECT_GE(server_->stats().decode_errors, 1u);
}

TEST_F(TcpServiceTest, WrongProtocolVersionRejectedTyped) {
  auto raw = Socket::ConnectTcp("127.0.0.1", server_->port());
  ASSERT_TRUE(raw.ok());
  api::QueryRequest query;
  query.session_id = 1;
  std::vector<uint8_t> frame = api::EncodeRequest(api::Request(query));
  frame[4] = uint8_t(api::kProtocolVersion + 7);  // version field
  ASSERT_TRUE(raw->WriteAll(frame.data(), frame.size()).ok());

  std::vector<uint8_t> header(api::kFrameHeaderBytes);
  ASSERT_TRUE(raw->ReadFully(header.data(), header.size()).ok());
  auto reply = api::DecodeFrameHeader(header.data(), header.size());
  ASSERT_TRUE(reply.ok());
  std::vector<uint8_t> body(reply->body_size);
  ASSERT_TRUE(raw->ReadFully(body.data(), body.size()).ok());
  auto response = api::DecodeResponseBody(*reply, body.data(), body.size());
  ASSERT_TRUE(response.ok());
  const auto& error = std::get<api::ErrorResponse>(response.value());
  EXPECT_EQ(StatusCodeFromWireCode(error.status.code),
            StatusCode::kNotImplemented);
}

// Concurrency gate (runs under TSan in CI): many client threads replaying
// full sessions against one server must finish without a failure, a race,
// or a lost response.
TEST_F(TcpServiceTest, ConcurrentClientsReplayCleanly) {
  constexpr int kThreads = 4;
  constexpr int kSessionsPerThread = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &failures] {
      auto client = TcpClient::Connect("127.0.0.1", server_->port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int s = 0; s < kSessionsPerThread; ++s) {
        const int query_id = (t * 131 + s * 17) % db_->num_images();
        const auto rankings = ReplayRemote(client.value(), query_id,
                                           uint64_t(t) << 16 | uint64_t(s));
        if (rankings.size() != size_t(kRounds + 1) || rankings[0].empty()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(TcpServiceTest, ProfiledSessionCarriesSpansAndWorkCounters) {
  TcpClient client = MustConnect();
  EXPECT_FALSE(client.last_profile().has_value());
  client.EnableProfiling();

  const uint64_t sid = client.StartSession(api::QuerySpec::ById(8)).value();
  ASSERT_TRUE(client.last_profile().has_value());
  EXPECT_NE(client.last_profile()->trace_id, 0u);

  ASSERT_TRUE(client.Query(sid, kDepth).ok());
  ASSERT_TRUE(client.last_profile().has_value());
  const api::ResponseProfile query_profile = *client.last_profile();
  auto span_names = [](const api::ResponseProfile& p) {
    std::vector<std::string> names;
    for (const api::ProfileSpan& s : p.spans) names.push_back(s.name);
    return names;
  };
  // The server profiles the stages completed before serialization: decode,
  // admission, and the retrieval work. encode/write happen after the
  // profile is built, so they can never appear.
  std::vector<std::string> names = span_names(query_profile);
  EXPECT_NE(std::find(names.begin(), names.end(), "decode"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "admission"), names.end());
  EXPECT_EQ(std::find(names.begin(), names.end(), "encode"), names.end());
  EXPECT_EQ(std::find(names.begin(), names.end(), "write"), names.end());
  // total_us covers at least the recorded spans' work.
  for (const api::ProfileSpan& s : query_profile.spans) {
    EXPECT_LE(s.duration_us, query_profile.total_us) << s.name;
  }

  // A feedback round runs the coupled-SVM solve: its per-request work
  // counters ride back on the profile.
  std::vector<logdb::LogEntry> round;
  const std::vector<int> ranking = client.Query(sid, kDepth).value();
  for (size_t i = 0; i < 4 && i < ranking.size(); ++i) {
    round.push_back(
        logdb::LogEntry{ranking[i], static_cast<int8_t>(i % 2 == 0 ? 1 : -1)});
  }
  ASSERT_TRUE(client.Feedback(sid, round, kDepth).ok());
  ASSERT_TRUE(client.last_profile().has_value());
  const api::ResponseProfile feedback_profile = *client.last_profile();
  names = span_names(feedback_profile);
  EXPECT_NE(std::find(names.begin(), names.end(), "solve"), names.end());
  int64_t smo_iterations = -1;
  for (const api::ProfileCounter& c : feedback_profile.counters) {
    if (c.name == "smo_iterations") smo_iterations = c.value;
  }
  EXPECT_GT(smo_iterations, 0) << "solve ran, its counter must be attached";

  // Turning profiling off stops both the request flag and the cached block.
  client.EnableProfiling(false);
  ASSERT_TRUE(client.Query(sid, kDepth).ok());
  EXPECT_FALSE(client.last_profile().has_value());
  EXPECT_TRUE(client.EndSession(sid).ok());

  // A plain client on the same server stays pure v1: no profile ever.
  TcpClient plain = MustConnect();
  const uint64_t plain_sid =
      plain.StartSession(api::QuerySpec::ById(8)).value();
  ASSERT_TRUE(plain.Query(plain_sid, kDepth).ok());
  EXPECT_FALSE(plain.last_profile().has_value());
  EXPECT_TRUE(plain.EndSession(plain_sid).ok());
}

TEST_F(TcpServiceTest, ProfilingDoesNotPerturbRankings) {
  // The EXPLAIN path must be a pure observer: the same session replayed
  // with profiling on reproduces the unprofiled rankings exactly.
  TcpClient plain = MustConnect();
  TcpClient profiled = MustConnect();
  profiled.EnableProfiling();
  const auto baseline = ReplayRemote(plain, 31, 53);
  const auto observed = ReplayRemote(profiled, 31, 53);
  ASSERT_EQ(baseline.size(), observed.size());
  for (size_t round = 0; round < baseline.size(); ++round) {
    SCOPED_TRACE(round);
    EXPECT_EQ(baseline[round], observed[round]);
  }
}

TEST_F(TcpServiceTest, StatsRpcReportsServiceCounters) {
  TcpClient client = MustConnect();
  // Self-contained (ctest runs each test in its own process): generate the
  // traffic whose counters the stats RPC must reflect.
  const uint64_t sid = client.StartSession(api::QuerySpec::ById(4)).value();
  ASSERT_TRUE(client.Query(sid).ok());
  ASSERT_TRUE(client.EndSession(sid).ok());
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GT(stats->sessions_started, 0u);
  EXPECT_GT(stats->sessions_ended, 0u);
  EXPECT_GT(stats->queries, 0u);
  EXPECT_GE(stats->requests, stats->queries);
}

// A dedicated server (own service) so Stop() semantics can be tested
// without tearing down the shared fixture server.
TEST_F(TcpServiceTest, StopUnblocksParkedClientAndJoinsThreads) {
  serve::ServiceOptions options;
  options.scheme = "Euclidean";
  auto service = serve::RetrievalService::Create(
      db_, log_features_, nullptr,
      core::MakeDefaultSchemeOptions(*db_, log_features_), options);
  ASSERT_TRUE(service.ok());
  api::Dispatcher dispatcher(service.value().get());
  TcpServer server(&dispatcher, TcpServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);
  // Starting twice is a typed error, not a rebind.
  EXPECT_EQ(server.Start().code(), StatusCode::kFailedPrecondition);

  auto client = TcpClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  // Park a reader mid-connection, then stop the server under it.
  std::thread parked([&] {
    Result<api::Response> response = client->Receive();
    EXPECT_FALSE(response.ok());  // unblocked by the shutdown
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.Stop();
  parked.join();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
}

}  // namespace
}  // namespace cbir::net
