#include "la/vector_ops.h"

#include <cmath>

#include <gtest/gtest.h>

namespace cbir::la {
namespace {

TEST(VectorOpsTest, Dot) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(Dot({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(Dot({1, -1}, {1, 1}), 0.0);
}

TEST(VectorOpsTest, SquaredDistance) {
  EXPECT_DOUBLE_EQ(SquaredDistance({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({1, 2, 3}, {1, 2, 3}), 0.0);
}

TEST(VectorOpsTest, Distance) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
}

TEST(VectorOpsTest, Norm) {
  EXPECT_DOUBLE_EQ(Norm({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Norm({}), 0.0);
}

TEST(VectorOpsTest, Axpy) {
  Vec y{1, 1, 1};
  Axpy(2.0, {1, 2, 3}, &y);
  EXPECT_EQ(y, (Vec{3, 5, 7}));
}

TEST(VectorOpsTest, Scale) {
  Vec x{2, -4};
  Scale(0.5, &x);
  EXPECT_EQ(x, (Vec{1, -2}));
}

TEST(VectorOpsTest, AddSubtract) {
  EXPECT_EQ(Add({1, 2}, {3, 4}), (Vec{4, 6}));
  EXPECT_EQ(Subtract({3, 4}, {1, 2}), (Vec{2, 2}));
}

TEST(VectorOpsTest, NormalizeL2) {
  Vec x{3, 4};
  NormalizeL2(&x);
  EXPECT_DOUBLE_EQ(x[0], 0.6);
  EXPECT_DOUBLE_EQ(x[1], 0.8);
}

TEST(VectorOpsTest, NormalizeZeroVectorUnchanged) {
  Vec x{0, 0, 0};
  NormalizeL2(&x);
  EXPECT_EQ(x, (Vec{0, 0, 0}));
}

TEST(VectorOpsDeathTest, SizeMismatch) {
  EXPECT_DEATH((void)Dot({1}, {1, 2}), "Check failed");
}

}  // namespace
}  // namespace cbir::la
