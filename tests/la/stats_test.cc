#include "la/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace cbir::la {
namespace {

TEST(StatsTest, Mean) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({-5}), -5.0);
}

TEST(StatsTest, Variance) {
  EXPECT_DOUBLE_EQ(Variance({2, 2, 2}), 0.0);
  // Population variance of {1,3}: mean 2, var = ((1)^2+(1)^2)/2 = 1.
  EXPECT_DOUBLE_EQ(Variance({1, 3}), 1.0);
}

TEST(StatsTest, StdDev) {
  EXPECT_DOUBLE_EQ(StdDev({1, 3}), 1.0);
  EXPECT_DOUBLE_EQ(StdDev({0, 0, 0, 0}), 0.0);
}

TEST(StatsTest, SkewnessCubeRootSymmetricIsZero) {
  EXPECT_NEAR(SkewnessCubeRoot({-1, 0, 1}), 0.0, 1e-12);
}

TEST(StatsTest, SkewnessCubeRootSign) {
  // Right-skewed data -> positive third moment.
  EXPECT_GT(SkewnessCubeRoot({0, 0, 0, 10}), 0.0);
  // Left-skewed.
  EXPECT_LT(SkewnessCubeRoot({0, 10, 10, 10}), 0.0);
}

TEST(StatsTest, SkewnessSharesScale) {
  // Scaling data by k scales the cube-root skewness by k.
  const std::vector<double> base{0, 0, 1, 5};
  std::vector<double> scaled;
  for (double v : base) scaled.push_back(10.0 * v);
  EXPECT_NEAR(SkewnessCubeRoot(scaled), 10.0 * SkewnessCubeRoot(base), 1e-9);
}

TEST(StatsTest, EntropyUniformIsLogN) {
  EXPECT_NEAR(Entropy({1, 1, 1, 1}), 2.0, 1e-12);          // log2(4)
  EXPECT_NEAR(Entropy({0.25, 0.25, 0.25, 0.25}), 2.0, 1e-12);
}

TEST(StatsTest, EntropyDegenerateIsZero) {
  EXPECT_DOUBLE_EQ(Entropy({5, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(Entropy({}), 0.0);
  EXPECT_DOUBLE_EQ(Entropy({0, 0}), 0.0);
}

TEST(StatsTest, EntropyIgnoresNonPositive) {
  EXPECT_NEAR(Entropy({1, 1, -3, 0}), 1.0, 1e-12);  // two live buckets
}

TEST(StatsTest, HistogramCountsAndClamps) {
  const auto h = Histogram({0.1, 0.2, 0.9, -5.0, 99.0}, 2, 0.0, 1.0);
  ASSERT_EQ(h.size(), 2u);
  // -5 clamps into bin 0; 99 clamps into bin 1.
  EXPECT_DOUBLE_EQ(h[0], 3.0);
  EXPECT_DOUBLE_EQ(h[1], 2.0);
}

TEST(StatsTest, HistogramEdgeValueGoesToLastBin) {
  const auto h = Histogram({1.0}, 4, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(h[3], 1.0);
}

TEST(StatsDeathTest, HistogramBadArgs) {
  EXPECT_DEATH((void)Histogram({1.0}, 0, 0.0, 1.0), "Check failed");
  EXPECT_DEATH((void)Histogram({1.0}, 4, 1.0, 1.0), "Check failed");
}

}  // namespace
}  // namespace cbir::la
