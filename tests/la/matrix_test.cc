#include "la/matrix.h"

#include <gtest/gtest.h>

namespace cbir::la {
namespace {

TEST(MatrixTest, ConstructAndFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FALSE(m.empty());
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(m.At(r, c), 1.5);
    }
  }
}

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
}

TEST(MatrixTest, AtReadWrite) {
  Matrix m(2, 2);
  m.At(0, 1) = 7.0;
  m.At(1, 0) = -2.0;
  EXPECT_DOUBLE_EQ(m.At(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(m.At(1, 0), -2.0);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.0);
}

TEST(MatrixTest, RowAccess) {
  Matrix m(2, 3);
  m.SetRow(1, {4, 5, 6});
  EXPECT_EQ(m.Row(1), (Vec{4, 5, 6}));
  EXPECT_EQ(m.Row(0), (Vec{0, 0, 0}));
  const double* p = m.RowPtr(1);
  EXPECT_DOUBLE_EQ(p[2], 6.0);
}

TEST(MatrixTest, Multiply) {
  Matrix m(2, 3);
  m.SetRow(0, {1, 2, 3});
  m.SetRow(1, {4, 5, 6});
  EXPECT_EQ(m.Multiply({1, 1, 1}), (Vec{6, 15}));
  EXPECT_EQ(m.Multiply({1, 0, -1}), (Vec{-2, -2}));
}

TEST(MatrixTest, MultiplyTransposed) {
  Matrix m(2, 3);
  m.SetRow(0, {1, 2, 3});
  m.SetRow(1, {4, 5, 6});
  EXPECT_EQ(m.MultiplyTransposed({1, 1}), (Vec{5, 7, 9}));
  EXPECT_EQ(m.MultiplyTransposed({2, 0}), (Vec{2, 4, 6}));
}

TEST(MatrixDeathTest, OutOfBounds) {
  Matrix m(2, 2);
  EXPECT_DEATH((void)m.At(2, 0), "Check failed");
  EXPECT_DEATH((void)m.At(0, 2), "Check failed");
  EXPECT_DEATH(m.SetRow(0, {1.0}), "Check failed");
}

}  // namespace
}  // namespace cbir::la
