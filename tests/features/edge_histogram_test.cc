#include "features/edge_histogram.h"

#include <numeric>

#include <gtest/gtest.h>

namespace cbir::features {
namespace {

using imaging::GrayImage;

GrayImage VerticalStep(int w, int h) {
  GrayImage img(w, h, 0.0f);
  for (int y = 0; y < h; ++y) {
    for (int x = w / 2; x < w; ++x) img.Set(x, y, 1.0f);
  }
  return img;
}

TEST(EdgeHistogramTest, DimensionAndNormalization) {
  const la::Vec h = EdgeDirectionHistogram(VerticalStep(32, 32));
  EXPECT_EQ(h.size(), static_cast<size_t>(kEdgeHistogramBins));
  const double sum = std::accumulate(h.begin(), h.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(EdgeHistogramTest, EmptyEdgeMapIsAllZero) {
  const la::Vec h = EdgeDirectionHistogram(GrayImage(16, 16, 0.5f));
  for (double v : h) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(EdgeHistogramTest, VerticalEdgeMassInHorizontalGradientBin) {
  // Dark->bright left to right: gradient points along +x (angle 0).
  const la::Vec h = EdgeDirectionHistogram(VerticalStep(32, 32));
  // Bin 0 covers [0, 20) degrees; allow the wrap bin too.
  EXPECT_GT(h[0] + h[kEdgeHistogramBins - 1], 0.9);
}

TEST(EdgeHistogramTest, OppositeContrastLandsInOppositeBin) {
  // Bright->dark left to right: gradient points along -x (angle 180).
  GrayImage img(32, 32, 1.0f);
  for (int y = 0; y < 32; ++y) {
    for (int x = 16; x < 32; ++x) img.Set(x, y, 0.0f);
  }
  const la::Vec h = EdgeDirectionHistogram(img);
  const int bin180 = 180 / (360 / kEdgeHistogramBins);
  EXPECT_GT(h[static_cast<size_t>(bin180)] +
                h[static_cast<size_t>(bin180 - 1)],
            0.9);
}

TEST(EdgeHistogramTest, HorizontalEdgeInVerticalBins) {
  GrayImage img(32, 32, 0.0f);
  for (int y = 16; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) img.Set(x, y, 1.0f);
  }
  const la::Vec h = EdgeDirectionHistogram(img);
  const int bin90 = 90 / (360 / kEdgeHistogramBins);
  EXPECT_GT(h[static_cast<size_t>(bin90)] +
                h[static_cast<size_t>(bin90 - 1)],
            0.9);
}

TEST(EdgeHistogramTest, CustomBinCount) {
  const la::Vec h = EdgeDirectionHistogram(
      Canny(VerticalStep(32, 32)), /*bins=*/36);
  EXPECT_EQ(h.size(), 36u);
  const double sum = std::accumulate(h.begin(), h.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(EdgeHistogramDeathTest, NonPositiveBins) {
  EXPECT_DEATH(
      (void)EdgeDirectionHistogram(Canny(VerticalStep(16, 16)), 0),
      "Check failed");
}

}  // namespace
}  // namespace cbir::features
