#include "features/sobel.h"

#include <gtest/gtest.h>

namespace cbir::features {
namespace {

using imaging::GrayImage;

GrayImage VerticalStep(int w, int h) {
  GrayImage img(w, h, 0.0f);
  for (int y = 0; y < h; ++y) {
    for (int x = w / 2; x < w; ++x) img.Set(x, y, 1.0f);
  }
  return img;
}

TEST(SobelTest, ConstantImageHasZeroGradient) {
  const GradientField g = Sobel(GrayImage(8, 8, 0.7f));
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      EXPECT_FLOAT_EQ(g.magnitude.At(x, y), 0.0f);
    }
  }
}

TEST(SobelTest, VerticalEdgeHasHorizontalGradient) {
  const GradientField g = Sobel(VerticalStep(16, 16));
  const int edge_x = 16 / 2 - 1;  // transition column
  EXPECT_GT(g.gx.At(edge_x, 8), 0.0f);
  EXPECT_NEAR(g.gy.At(edge_x, 8), 0.0f, 1e-5);
  // Sobel response to a unit step is 4 (1+2+1).
  EXPECT_NEAR(g.gx.At(edge_x, 8), 4.0f, 1e-5);
  EXPECT_NEAR(g.magnitude.At(edge_x, 8), 4.0f, 1e-5);
}

TEST(SobelTest, HorizontalEdgeHasVerticalGradient) {
  GrayImage img(16, 16, 0.0f);
  for (int y = 8; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) img.Set(x, y, 1.0f);
  }
  const GradientField g = Sobel(img);
  EXPECT_GT(g.gy.At(8, 7), 0.0f);
  EXPECT_NEAR(g.gx.At(8, 7), 0.0f, 1e-5);
}

TEST(SobelTest, GradientSignFollowsIntensityDirection) {
  // Bright-to-dark from left to right: gx negative at the edge.
  GrayImage img(16, 16, 1.0f);
  for (int y = 0; y < 16; ++y) {
    for (int x = 8; x < 16; ++x) img.Set(x, y, 0.0f);
  }
  const GradientField g = Sobel(img);
  EXPECT_LT(g.gx.At(7, 8), 0.0f);
}

TEST(SobelTest, DiagonalEdgeActivatesBothComponents) {
  GrayImage img(16, 16, 0.0f);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      if (x + y > 16) img.Set(x, y, 1.0f);
    }
  }
  const GradientField g = Sobel(img);
  // Mid-diagonal pixel: both gradient components nonzero with equal signs.
  EXPECT_GT(g.gx.At(8, 8), 0.0f);
  EXPECT_GT(g.gy.At(8, 8), 0.0f);
}

}  // namespace
}  // namespace cbir::features
