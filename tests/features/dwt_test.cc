#include "features/dwt.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cbir::features {
namespace {

using imaging::GrayImage;

TEST(Dwt1dTest, OutputSizes) {
  std::vector<double> a, d;
  Dwt1d({1, 2, 3, 4, 5, 6, 7, 8}, &a, &d);
  EXPECT_EQ(a.size(), 4u);
  EXPECT_EQ(d.size(), 4u);
}

TEST(Dwt1dTest, ConstantSignalHasZeroDetail) {
  std::vector<double> a, d;
  Dwt1d(std::vector<double>(16, 3.0), &a, &d);
  for (double v : d) EXPECT_NEAR(v, 0.0, 1e-12);
  // Orthonormal low-pass of a constant is constant * sqrt(2).
  for (double v : a) EXPECT_NEAR(v, 3.0 * std::sqrt(2.0), 1e-12);
}

TEST(Dwt1dTest, LinearSignalHasZeroDetail) {
  // Daubechies-4 has two vanishing moments: linear ramps produce zero
  // detail coefficients (up to the periodic wrap-around positions).
  std::vector<double> ramp(32);
  for (size_t i = 0; i < ramp.size(); ++i) ramp[i] = static_cast<double>(i);
  std::vector<double> a, d;
  Dwt1d(ramp, &a, &d);
  // All interior detail coefficients vanish; the last two wrap the boundary.
  for (size_t i = 0; i + 2 < d.size(); ++i) {
    EXPECT_NEAR(d[i], 0.0, 1e-9) << "i=" << i;
  }
}

TEST(Dwt1dTest, EnergyPreservation) {
  Rng rng(5);
  std::vector<double> x(64);
  for (double& v : x) v = rng.Gaussian();
  std::vector<double> a, d;
  Dwt1d(x, &a, &d);
  double in_energy = 0.0, out_energy = 0.0;
  for (double v : x) in_energy += v * v;
  for (double v : a) out_energy += v * v;
  for (double v : d) out_energy += v * v;
  EXPECT_NEAR(in_energy, out_energy, 1e-9);
}

TEST(Dwt1dTest, PerfectReconstruction) {
  Rng rng(9);
  for (size_t n : {4u, 8u, 32u, 128u}) {
    std::vector<double> x(n);
    for (double& v : x) v = rng.Uniform(-10.0, 10.0);
    std::vector<double> a, d;
    Dwt1d(x, &a, &d);
    const std::vector<double> rec = Idwt1d(a, d);
    ASSERT_EQ(rec.size(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(rec[i], x[i], 1e-10) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Dwt2dTest, SubbandShapes) {
  const DwtLevel level = Dwt2d(GrayImage(16, 12, 1.0f));
  EXPECT_EQ(level.ll.width(), 8);
  EXPECT_EQ(level.ll.height(), 6);
  EXPECT_EQ(level.hh.width(), 8);
  EXPECT_EQ(level.hh.height(), 6);
}

TEST(Dwt2dTest, ConstantImageDetailIsZero) {
  const DwtLevel level = Dwt2d(GrayImage(16, 16, 0.5f));
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      EXPECT_NEAR(level.lh.At(x, y), 0.0f, 1e-6);
      EXPECT_NEAR(level.hl.At(x, y), 0.0f, 1e-6);
      EXPECT_NEAR(level.hh.At(x, y), 0.0f, 1e-6);
      // 2-D orthonormal low-pass of a constant scales by 2.
      EXPECT_NEAR(level.ll.At(x, y), 1.0f, 1e-6);
    }
  }
}

TEST(Dwt2dTest, VerticalStripesActivateRowHighPass) {
  // Alternating columns: high horizontal frequency -> LH ("rows
  // high-passed" here means the row-direction filter saw the oscillation).
  GrayImage img(16, 16, 0.0f);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; x += 2) img.Set(x, y, 1.0f);
  }
  const DwtLevel level = Dwt2d(img);
  double lh_energy = 0.0, hl_energy = 0.0;
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      // In our layout LH = row high-pass (gx direction), HL = column.
      lh_energy += level.hl.At(x, y) * level.hl.At(x, y);
      hl_energy += level.lh.At(x, y) * level.lh.At(x, y);
    }
  }
  // One orientation dominates by a wide margin.
  const double hi = std::max(lh_energy, hl_energy);
  const double lo = std::min(lh_energy, hl_energy);
  EXPECT_GT(hi, 100.0 * (lo + 1e-9));
}

TEST(DwtPyramidTest, LevelsAndFinalLl) {
  const DwtPyramid p = DwtPyramidDecompose(GrayImage(64, 64, 0.3f), 3);
  EXPECT_EQ(p.levels.size(), 3u);
  EXPECT_EQ(p.levels[0].ll.width(), 32);
  EXPECT_EQ(p.levels[1].ll.width(), 16);
  EXPECT_EQ(p.levels[2].ll.width(), 8);
  EXPECT_EQ(p.final_ll.width(), 8);
  EXPECT_EQ(p.final_ll.height(), 8);
}

TEST(DwtPyramidDeathTest, IndivisibleDimensions) {
  EXPECT_DEATH((void)DwtPyramidDecompose(GrayImage(20, 16, 0.0f), 3),
               "not divisible");
}

TEST(Dwt1dDeathTest, OddLength) {
  std::vector<double> a, d;
  EXPECT_DEATH(Dwt1d({1, 2, 3}, &a, &d), "Check failed");
}

}  // namespace
}  // namespace cbir::features
