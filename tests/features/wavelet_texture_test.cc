#include "features/wavelet_texture.h"

#include <gtest/gtest.h>

#include "imaging/noise.h"

namespace cbir::features {
namespace {

using imaging::GrayImage;

TEST(WaveletTextureTest, DimensionCount) {
  const la::Vec t = WaveletTexture(GrayImage(64, 64, 0.5f));
  EXPECT_EQ(t.size(), static_cast<size_t>(kWaveletTextureDims));
}

TEST(WaveletTextureTest, ConstantImageHasZeroEntropy) {
  const la::Vec t = WaveletTexture(GrayImage(64, 64, 0.7f));
  for (double v : t) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(WaveletTextureTest, TexturedImageHasHigherEntropyThanFlat) {
  GrayImage flat(64, 64, 0.5f);
  // Build a noisy texture via the RGB noise helper on a gray-ish image.
  imaging::Image noisy_rgb(64, 64, imaging::Rgb{128, 128, 128});
  imaging::AddFbmNoise(&noisy_rgb, 7, 8.0, 4, 0.3);
  GrayImage noisy(64, 64);
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      noisy.Set(x, y, noisy_rgb.At(x, y).r / 255.0f);
    }
  }
  const la::Vec t_flat = WaveletTexture(flat);
  const la::Vec t_noisy = WaveletTexture(noisy);
  double sum_flat = 0.0, sum_noisy = 0.0;
  for (double v : t_flat) sum_flat += v;
  for (double v : t_noisy) sum_noisy += v;
  EXPECT_GT(sum_noisy, sum_flat + 1.0);
}

TEST(WaveletTextureTest, CustomLevels) {
  WaveletTextureOptions options;
  options.levels = 2;
  const la::Vec t = WaveletTexture(GrayImage(32, 32, 0.1f), options);
  EXPECT_EQ(t.size(), 6u);
}

TEST(SubbandEntropyTest, UniformBandMaximizesEntropy) {
  // A band whose |coefficients| spread uniformly across bins approaches
  // log2(bins); a two-valued band yields ~1 bit.
  GrayImage spread(16, 16);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      spread.Set(x, y, static_cast<float>(y * 16 + x) / 256.0f);
    }
  }
  GrayImage binary(16, 16);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      binary.Set(x, y, (x % 2 == 0) ? 0.25f : 0.75f);
    }
  }
  EXPECT_GT(SubbandEntropy(spread, 32), 4.0);
  EXPECT_NEAR(SubbandEntropy(binary, 32), 1.0, 1e-6);
}

TEST(SubbandEntropyTest, ZeroBandIsZero) {
  EXPECT_DOUBLE_EQ(SubbandEntropy(GrayImage(8, 8, 0.0f), 32), 0.0);
}

}  // namespace
}  // namespace cbir::features
