#include "features/normalizer.h"

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

namespace cbir::features {
namespace {

la::Matrix SampleMatrix() {
  la::Matrix m(4, 2);
  m.SetRow(0, {1.0, 100.0});
  m.SetRow(1, {2.0, 200.0});
  m.SetRow(2, {3.0, 300.0});
  m.SetRow(3, {4.0, 400.0});
  return m;
}

TEST(NormalizerTest, FitComputesMoments) {
  const Normalizer n = Normalizer::Fit(SampleMatrix());
  ASSERT_TRUE(n.fitted());
  EXPECT_EQ(n.dims(), 2);
  EXPECT_DOUBLE_EQ(n.mean()[0], 2.5);
  EXPECT_DOUBLE_EQ(n.mean()[1], 250.0);
  EXPECT_NEAR(n.stddev()[0], std::sqrt(1.25), 1e-12);
}

TEST(NormalizerTest, TransformedColumnsAreStandardized) {
  la::Matrix m = SampleMatrix();
  const Normalizer n = Normalizer::Fit(m);
  n.ApplyAll(&m);
  for (size_t c = 0; c < 2; ++c) {
    double mean = 0.0, var = 0.0;
    for (size_t r = 0; r < 4; ++r) mean += m.At(r, c);
    mean /= 4;
    for (size_t r = 0; r < 4; ++r) {
      var += (m.At(r, c) - mean) * (m.At(r, c) - mean);
    }
    var /= 4;
    EXPECT_NEAR(mean, 0.0, 1e-12);
    EXPECT_NEAR(var, 1.0, 1e-12);
  }
}

TEST(NormalizerTest, ConstantColumnMapsToZero) {
  la::Matrix m(3, 1);
  m.SetRow(0, {5.0});
  m.SetRow(1, {5.0});
  m.SetRow(2, {5.0});
  const Normalizer n = Normalizer::Fit(m);
  la::Vec v{5.0};
  n.Apply(&v);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
}

TEST(NormalizerTest, TransformMatchesApply) {
  const Normalizer n = Normalizer::Fit(SampleMatrix());
  la::Vec v{2.0, 150.0};
  const la::Vec t = n.Transform(v);
  n.Apply(&v);
  EXPECT_EQ(t, v);
}

TEST(NormalizerTest, SaveLoadRoundTrip) {
  const Normalizer n = Normalizer::Fit(SampleMatrix());
  std::stringstream ss;
  n.Save(ss);
  auto loaded = Normalizer::Load(ss);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->mean(), n.mean());
  EXPECT_EQ(loaded->stddev(), n.stddev());
}

TEST(NormalizerTest, LoadRejectsGarbage) {
  std::stringstream ss("not-a-number");
  EXPECT_FALSE(Normalizer::Load(ss).ok());
}

TEST(NormalizerTest, LoadRejectsTruncated) {
  std::stringstream ss("3\n0.0 1.0\n");
  EXPECT_FALSE(Normalizer::Load(ss).ok());
}

TEST(NormalizerTest, LoadRejectsNonPositiveStddev) {
  std::stringstream ss("1\n0.0 -1.0\n");
  auto r = Normalizer::Load(ss);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(NormalizerDeathTest, ApplyWithoutFit) {
  Normalizer n;
  la::Vec v{1.0};
  EXPECT_DEATH(n.Apply(&v), "Check failed");
}

TEST(NormalizerDeathTest, DimensionMismatch) {
  const Normalizer n = Normalizer::Fit(SampleMatrix());
  la::Vec v{1.0};
  EXPECT_DEATH(n.Apply(&v), "Check failed");
}

}  // namespace
}  // namespace cbir::features
