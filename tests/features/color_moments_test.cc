#include "features/color_moments.h"

#include <gtest/gtest.h>

#include "imaging/color.h"

namespace cbir::features {
namespace {

using imaging::Image;
using imaging::Rgb;

TEST(ColorMomentsTest, DimensionCount) {
  Image img(8, 8, Rgb{100, 150, 200});
  const la::Vec m = ColorMoments(img);
  EXPECT_EQ(m.size(), static_cast<size_t>(kColorMomentDims));
}

TEST(ColorMomentsTest, ConstantImageHasZeroSpread) {
  Image img(8, 8, Rgb{200, 50, 120});
  const la::Vec m = ColorMoments(img);
  const imaging::Hsv hsv = imaging::RgbToHsv(Rgb{200, 50, 120});
  // Mean matches pixel HSV; std and skew are exactly zero per channel.
  EXPECT_NEAR(m[0], hsv.h / 360.0, 1e-9);
  EXPECT_NEAR(m[1], 0.0, 1e-9);
  EXPECT_NEAR(m[2], 0.0, 1e-9);
  EXPECT_NEAR(m[3], hsv.s, 1e-9);
  EXPECT_NEAR(m[4], 0.0, 1e-9);
  EXPECT_NEAR(m[5], 0.0, 1e-9);
  EXPECT_NEAR(m[6], hsv.v, 1e-9);
  EXPECT_NEAR(m[7], 0.0, 1e-9);
  EXPECT_NEAR(m[8], 0.0, 1e-9);
}

TEST(ColorMomentsTest, ValueChannelMeanOfBlackWhiteMix) {
  Image img(2, 1);
  img.Set(0, 0, Rgb{0, 0, 0});
  img.Set(1, 0, Rgb{255, 255, 255});
  const la::Vec m = ColorMoments(img);
  EXPECT_NEAR(m[6], 0.5, 1e-9);   // mean V
  EXPECT_NEAR(m[7], 0.5, 1e-9);   // std V of {0, 1}
}

TEST(ColorMomentsTest, SaturationDistinguishesVividFromGray) {
  Image vivid(4, 4, Rgb{255, 0, 0});
  Image gray(4, 4, Rgb{128, 128, 128});
  EXPECT_GT(ColorMoments(vivid)[3], ColorMoments(gray)[3] + 0.9);
}

TEST(ColorMomentsTest, SkewnessSignOnValueChannel) {
  // Mostly dark with one bright pixel -> right-skewed V distribution.
  Image img(4, 4, Rgb{10, 10, 10});
  img.Set(0, 0, Rgb{250, 250, 250});
  const la::Vec m = ColorMoments(img);
  EXPECT_GT(m[8], 0.0);
}

TEST(ColorMomentsTest, InvariantToPixelPermutation) {
  // Moments are order-free: a shuffled raster yields identical features.
  Image a(4, 2);
  Image b(4, 2);
  const Rgb colors[] = {Rgb{1, 2, 3},    Rgb{200, 30, 90}, Rgb{0, 0, 0},
                        Rgb{255, 255, 0}, Rgb{17, 99, 180}, Rgb{45, 45, 45},
                        Rgb{90, 10, 10}, Rgb{10, 90, 10}};
  for (int i = 0; i < 8; ++i) a.Set(i % 4, i / 4, colors[i]);
  for (int i = 0; i < 8; ++i) b.Set(i % 4, i / 4, colors[7 - i]);
  const la::Vec ma = ColorMoments(a);
  const la::Vec mb = ColorMoments(b);
  for (size_t i = 0; i < ma.size(); ++i) {
    EXPECT_NEAR(ma[i], mb[i], 1e-12) << "dim " << i;
  }
}

TEST(ColorMomentsDeathTest, EmptyImage) {
  EXPECT_DEATH((void)ColorMoments(Image()), "Check failed");
}

}  // namespace
}  // namespace cbir::features
