#include "features/canny.h"

#include <gtest/gtest.h>

namespace cbir::features {
namespace {

using imaging::GrayImage;

GrayImage VerticalStep(int w, int h) {
  GrayImage img(w, h, 0.0f);
  for (int y = 0; y < h; ++y) {
    for (int x = w / 2; x < w; ++x) img.Set(x, y, 1.0f);
  }
  return img;
}

TEST(CannyTest, ConstantImageHasNoEdges) {
  const CannyResult r = Canny(GrayImage(32, 32, 0.5f));
  EXPECT_EQ(r.edge_count, 0);
}

TEST(CannyTest, StepEdgeDetectedAsThinLine) {
  const CannyResult r = Canny(VerticalStep(32, 32));
  EXPECT_GT(r.edge_count, 0);
  // Non-maximum suppression must leave a thin (1-2 px per row) response.
  for (int y = 4; y < 28; ++y) {
    int edges_in_row = 0;
    for (int x = 0; x < 32; ++x) {
      if (r.edges.At(x, y) > 0.0f) ++edges_in_row;
    }
    EXPECT_GE(edges_in_row, 1) << "row " << y;
    EXPECT_LE(edges_in_row, 2) << "row " << y;
  }
}

TEST(CannyTest, EdgeLocatedNearTransition) {
  const CannyResult r = Canny(VerticalStep(32, 32));
  for (int y = 8; y < 24; ++y) {
    bool found_near = false;
    for (int x = 13; x <= 18; ++x) {
      if (r.edges.At(x, y) > 0.0f) found_near = true;
    }
    EXPECT_TRUE(found_near) << "row " << y;
  }
}

TEST(CannyTest, RectangleOutlineDetected) {
  GrayImage img(48, 48, 0.1f);
  for (int y = 12; y < 36; ++y) {
    for (int x = 12; x < 36; ++x) img.Set(x, y, 0.9f);
  }
  const CannyResult r = Canny(img);
  // Perimeter of a 24x24 square is ~96; Canny should find a comparable
  // number of edge pixels (smoothing rounds corners).
  EXPECT_GT(r.edge_count, 60);
  EXPECT_LT(r.edge_count, 220);
  // Interior must be edge-free.
  for (int y = 20; y < 28; ++y) {
    for (int x = 20; x < 28; ++x) {
      EXPECT_EQ(r.edges.At(x, y), 0.0f);
    }
  }
}

TEST(CannyTest, HysteresisConnectsWeakEdges) {
  // A gradient ramp edge whose middle is weaker: with a generous low
  // threshold the contour stays connected; with low_ratio == 1 (low ==
  // high) fewer pixels survive.
  // Middle strength 0.1: below the high threshold (0.2 * max) but above the
  // loose low threshold (0.4 * 0.2 * max = 0.08 * max) after NMS.
  GrayImage img(32, 32, 0.0f);
  for (int y = 0; y < 32; ++y) {
    const float strength = (y >= 10 && y <= 21) ? 0.10f : 1.0f;
    for (int x = 16; x < 32; ++x) img.Set(x, y, strength);
  }
  CannyOptions loose;
  loose.low_ratio = 0.2;
  CannyOptions strict;
  strict.low_ratio = 1.0;
  const int loose_count = Canny(img, loose).edge_count;
  const int strict_count = Canny(img, strict).edge_count;
  EXPECT_GT(loose_count, strict_count);
}

TEST(CannyTest, HigherThresholdFindsFewerEdges) {
  GrayImage img(32, 32, 0.0f);
  // Two steps of different contrast.
  for (int y = 0; y < 32; ++y) {
    for (int x = 8; x < 32; ++x) img.Set(x, y, 0.3f);
    for (int x = 24; x < 32; ++x) img.Set(x, y, 1.0f);
  }
  CannyOptions low;
  low.high_ratio = 0.10;
  CannyOptions high;
  high.high_ratio = 0.8;
  EXPECT_GT(Canny(img, low).edge_count, Canny(img, high).edge_count);
}

TEST(CannyTest, EdgeCountMatchesMap) {
  const CannyResult r = Canny(VerticalStep(24, 24));
  int manual = 0;
  for (int y = 0; y < 24; ++y) {
    for (int x = 0; x < 24; ++x) {
      if (r.edges.At(x, y) > 0.0f) ++manual;
    }
  }
  EXPECT_EQ(manual, r.edge_count);
}

}  // namespace
}  // namespace cbir::features
