#include "features/gaussian.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

namespace cbir::features {
namespace {

using imaging::GrayImage;

TEST(GaussianKernelTest, SumsToOne) {
  for (double sigma : {0.5, 1.0, 1.4, 3.0}) {
    const auto kernel = GaussianKernel1d(sigma);
    const double sum = std::accumulate(kernel.begin(), kernel.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-6) << "sigma=" << sigma;
    EXPECT_EQ(kernel.size() % 2, 1u);  // odd length
  }
}

TEST(GaussianKernelTest, SymmetricAndPeakedAtCenter) {
  const auto kernel = GaussianKernel1d(1.4);
  const size_t mid = kernel.size() / 2;
  for (size_t i = 0; i < mid; ++i) {
    EXPECT_FLOAT_EQ(kernel[i], kernel[kernel.size() - 1 - i]);
    EXPECT_LT(kernel[i], kernel[mid]);
  }
}

TEST(GaussianBlurTest, PreservesConstantImage) {
  GrayImage img(16, 16, 0.42f);
  const GrayImage out = GaussianBlur(img, 1.4);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      EXPECT_NEAR(out.At(x, y), 0.42f, 1e-5);
    }
  }
}

TEST(GaussianBlurTest, NonPositiveSigmaIsIdentity) {
  GrayImage img(4, 4);
  img.Set(2, 2, 1.0f);
  const GrayImage out = GaussianBlur(img, 0.0);
  EXPECT_EQ(out.data(), img.data());
}

TEST(GaussianBlurTest, SpreadsImpulse) {
  GrayImage img(15, 15, 0.0f);
  img.Set(7, 7, 1.0f);
  const GrayImage out = GaussianBlur(img, 1.0);
  EXPECT_LT(out.At(7, 7), 1.0f);
  EXPECT_GT(out.At(7, 7), out.At(8, 7));
  EXPECT_GT(out.At(8, 7), out.At(9, 7));
  EXPECT_GT(out.At(8, 7), 0.0f);
}

TEST(GaussianBlurTest, ApproximatelyConservesMass) {
  // With replicate borders an interior impulse keeps total mass ~1.
  GrayImage img(21, 21, 0.0f);
  img.Set(10, 10, 1.0f);
  const GrayImage out = GaussianBlur(img, 1.4);
  double mass = 0.0;
  for (float v : out.data()) mass += v;
  EXPECT_NEAR(mass, 1.0, 1e-4);
}

TEST(GaussianBlurTest, SeparableMatchesTwoPasses) {
  // Blurring twice with sigma s is a blur with sigma s*sqrt(2): check the
  // variance-addition property loosely via peak decay.
  GrayImage img(31, 31, 0.0f);
  img.Set(15, 15, 1.0f);
  const GrayImage once = GaussianBlur(img, 2.0);
  const GrayImage twice = GaussianBlur(GaussianBlur(img, 2.0), 2.0);
  const GrayImage direct = GaussianBlur(img, 2.0 * std::sqrt(2.0));
  EXPECT_NEAR(twice.At(15, 15), direct.At(15, 15), 0.005);
  EXPECT_LT(twice.At(15, 15), once.At(15, 15));
}

}  // namespace
}  // namespace cbir::features
