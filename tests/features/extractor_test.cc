#include "features/extractor.h"

#include <cmath>

#include <gtest/gtest.h>

#include "imaging/synthetic.h"

namespace cbir::features {
namespace {

TEST(FeatureLayoutTest, DefaultTotals) {
  FeatureLayout layout;
  EXPECT_EQ(layout.total(), 36);
}

TEST(FeatureLayoutTest, DimensionNames) {
  FeatureLayout layout;
  EXPECT_EQ(layout.DimensionName(0), "color:meanH");
  EXPECT_EQ(layout.DimensionName(1), "color:stdH");
  EXPECT_EQ(layout.DimensionName(2), "color:skewH");
  EXPECT_EQ(layout.DimensionName(3), "color:meanS");
  EXPECT_EQ(layout.DimensionName(9), "edge:bin00");
  EXPECT_EQ(layout.DimensionName(26), "edge:bin17");
  EXPECT_EQ(layout.DimensionName(27), "texture:L0LH");
  EXPECT_EQ(layout.DimensionName(35), "texture:L2HH");
  EXPECT_EQ(layout.DimensionName(99), "unknown:99");
}

TEST(FeatureExtractorTest, PaperDimensionality) {
  FeatureExtractor extractor;
  EXPECT_EQ(extractor.dims(), 36);  // 9 color + 18 edge + 9 texture
}

TEST(FeatureExtractorTest, ExtractProducesFiniteVector) {
  imaging::SyntheticCorelOptions corpus_options;
  corpus_options.num_categories = 2;
  corpus_options.images_per_category = 2;
  corpus_options.width = 64;
  corpus_options.height = 64;
  imaging::SyntheticCorel corpus(corpus_options);
  FeatureExtractor extractor;
  const la::Vec f = extractor.Extract(corpus.Generate(0, 0));
  ASSERT_EQ(f.size(), 36u);
  for (double v : f) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(FeatureExtractorTest, DeterministicExtraction) {
  imaging::SyntheticCorelOptions corpus_options;
  corpus_options.num_categories = 1;
  corpus_options.images_per_category = 1;
  corpus_options.width = 64;
  corpus_options.height = 64;
  imaging::SyntheticCorel corpus(corpus_options);
  FeatureExtractor extractor;
  EXPECT_EQ(extractor.Extract(corpus.Generate(0, 0)),
            extractor.Extract(corpus.Generate(0, 0)));
}

TEST(FeatureExtractorTest, CustomEdgeBinsChangeLayout) {
  FeatureOptions options;
  options.edge_bins = 36;
  FeatureExtractor extractor(options);
  EXPECT_EQ(extractor.dims(), 9 + 36 + 9);
  EXPECT_EQ(extractor.layout().texture_offset, 45);
}

TEST(FeatureExtractorTest, CustomTextureLevels) {
  FeatureOptions options;
  options.texture.levels = 2;
  FeatureExtractor extractor(options);
  EXPECT_EQ(extractor.dims(), 9 + 18 + 6);
}

TEST(FeatureExtractorTest, DifferentImagesGiveDifferentFeatures) {
  imaging::SyntheticCorelOptions corpus_options;
  corpus_options.num_categories = 2;
  corpus_options.images_per_category = 1;
  corpus_options.width = 64;
  corpus_options.height = 64;
  imaging::SyntheticCorel corpus(corpus_options);
  FeatureExtractor extractor;
  const la::Vec f0 = extractor.Extract(corpus.Generate(0, 0));
  const la::Vec f1 = extractor.Extract(corpus.Generate(1, 0));
  EXPECT_NE(f0, f1);
}

}  // namespace
}  // namespace cbir::features
