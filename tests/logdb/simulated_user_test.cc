#include "logdb/simulated_user.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cbir::logdb {
namespace {

std::vector<int> TwoCategoryLabels(int n_per_cat) {
  std::vector<int> labels;
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < n_per_cat; ++i) labels.push_back(c);
  }
  return labels;
}

TEST(SimulatedUserTest, NoiseFreeJudgmentsMatchGroundTruth) {
  SimulatedUser user(TwoCategoryLabels(3), UserModel{0.0});
  Rng rng(1);
  EXPECT_EQ(user.Judge(0, 0, &rng), 1);
  EXPECT_EQ(user.Judge(2, 0, &rng), 1);
  EXPECT_EQ(user.Judge(3, 0, &rng), -1);
  EXPECT_EQ(user.Judge(0, 1, &rng), -1);
}

TEST(SimulatedUserTest, IsRelevantAndCategory) {
  SimulatedUser user(TwoCategoryLabels(2), UserModel{0.0});
  EXPECT_TRUE(user.IsRelevant(1, 0));
  EXPECT_FALSE(user.IsRelevant(2, 0));
  EXPECT_EQ(user.category(3), 1);
  EXPECT_EQ(user.num_images(), 4);
}

TEST(SimulatedUserTest, NoiseRateApproximatelyRealized) {
  SimulatedUser user(TwoCategoryLabels(1), UserModel{0.25});
  Rng rng(42);
  int flipped = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (user.Judge(0, 0, &rng) == -1) ++flipped;  // truth is +1
  }
  EXPECT_NEAR(static_cast<double>(flipped) / trials, 0.25, 0.01);
}

TEST(SimulatedUserTest, FullNoiseAlwaysFlips) {
  SimulatedUser user(TwoCategoryLabels(2), UserModel{1.0});
  Rng rng(7);
  EXPECT_EQ(user.Judge(0, 0, &rng), -1);  // truth +1, always flipped
  EXPECT_EQ(user.Judge(2, 0, &rng), 1);   // truth -1, always flipped
}

la::Matrix ClusteredFeatures(const std::vector<int>& categories,
                             uint64_t seed) {
  Rng rng(seed);
  la::Matrix features(categories.size(), 2);
  for (size_t i = 0; i < categories.size(); ++i) {
    features.At(i, 0) = categories[i] * 10.0 + rng.Gaussian();
    features.At(i, 1) = rng.Gaussian();
  }
  return features;
}

TEST(CollectLogsTest, ProtocolShape) {
  const std::vector<int> categories = TwoCategoryLabels(30);
  const la::Matrix features = ClusteredFeatures(categories, 3);
  LogCollectionOptions options;
  options.num_sessions = 12;
  options.session_size = 8;
  options.seed = 99;
  const LogStore store = CollectLogs(features, categories, options);
  EXPECT_EQ(store.num_sessions(), 12);
  for (const LogSession& s : store.sessions()) {
    EXPECT_EQ(s.entries.size(), 8u);
    EXPECT_GE(s.query_image_id, 0);
    EXPECT_LT(s.query_image_id, 60);
    for (const LogEntry& e : s.entries) {
      EXPECT_NE(e.image_id, s.query_image_id);  // query never judged
      EXPECT_TRUE(e.judgment == 1 || e.judgment == -1);
    }
  }
}

TEST(CollectLogsTest, DeterministicInSeed) {
  const std::vector<int> categories = TwoCategoryLabels(20);
  const la::Matrix features = ClusteredFeatures(categories, 5);
  LogCollectionOptions options;
  options.num_sessions = 5;
  options.session_size = 6;
  options.seed = 123;
  const LogStore a = CollectLogs(features, categories, options);
  const LogStore b = CollectLogs(features, categories, options);
  ASSERT_EQ(a.num_sessions(), b.num_sessions());
  for (int s = 0; s < a.num_sessions(); ++s) {
    EXPECT_EQ(a.sessions()[s].query_image_id, b.sessions()[s].query_image_id);
    ASSERT_EQ(a.sessions()[s].entries.size(), b.sessions()[s].entries.size());
    for (size_t e = 0; e < a.sessions()[s].entries.size(); ++e) {
      EXPECT_EQ(a.sessions()[s].entries[e].image_id,
                b.sessions()[s].entries[e].image_id);
      EXPECT_EQ(a.sessions()[s].entries[e].judgment,
                b.sessions()[s].entries[e].judgment);
    }
  }
}

TEST(CollectLogsTest, NoiseFreeLogsReflectCategories) {
  // With well-separated clusters and no noise, judged top results of a query
  // are mostly same-category -> mostly positive marks.
  const std::vector<int> categories = TwoCategoryLabels(30);
  const la::Matrix features = ClusteredFeatures(categories, 7);
  LogCollectionOptions options;
  options.num_sessions = 20;
  options.session_size = 10;
  options.user.noise_rate = 0.0;
  options.seed = 17;
  const LogStore store = CollectLogs(features, categories, options);
  const RelevanceMatrix m = store.BuildMatrix(60);
  EXPECT_GT(m.PositiveCount(), m.NegativeCount());
}

TEST(CollectLogsTest, JudgmentsAgreeWithCategoriesWhenNoiseFree) {
  const std::vector<int> categories = TwoCategoryLabels(15);
  const la::Matrix features = ClusteredFeatures(categories, 9);
  LogCollectionOptions options;
  options.num_sessions = 8;
  options.session_size = 5;
  options.user.noise_rate = 0.0;
  const LogStore store = CollectLogs(features, categories, options);
  for (const LogSession& s : store.sessions()) {
    const int qcat = categories[static_cast<size_t>(s.query_image_id)];
    for (const LogEntry& e : s.entries) {
      const bool relevant =
          categories[static_cast<size_t>(e.image_id)] == qcat;
      EXPECT_EQ(e.judgment, relevant ? 1 : -1);
    }
  }
}

}  // namespace
}  // namespace cbir::logdb
