#include "logdb/log_store.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace cbir::logdb {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

LogStore SampleStore() {
  LogStore store;
  LogSession s1;
  s1.query_image_id = 5;
  s1.entries = {LogEntry{1, 1}, LogEntry{2, -1}};
  LogSession s2;
  s2.query_image_id = 9;
  s2.entries = {LogEntry{3, 1}};
  store.Append(s1);
  store.Append(s2);
  return store;
}

TEST(LogStoreTest, AppendAndCount) {
  const LogStore store = SampleStore();
  EXPECT_EQ(store.num_sessions(), 2);
  EXPECT_EQ(store.TotalJudgments(), 3);
}

TEST(LogStoreTest, BuildMatrix) {
  const LogStore store = SampleStore();
  const RelevanceMatrix m = store.BuildMatrix(10);
  EXPECT_EQ(m.num_sessions(), 2);
  EXPECT_EQ(m.Value(0, 1), 1);
  EXPECT_EQ(m.Value(1, 3), 1);
}

TEST(LogStoreTest, BuildMatrixTruncated) {
  const LogStore store = SampleStore();
  const RelevanceMatrix m = store.BuildMatrix(10, /*max_sessions=*/1);
  EXPECT_EQ(m.num_sessions(), 1);
}

TEST(LogStoreTest, BuildMatrixTruncationClamps) {
  const LogStore store = SampleStore();
  EXPECT_EQ(store.BuildMatrix(10, 99).num_sessions(), 2);
}

TEST(LogStoreTest, SaveLoadRoundTrip) {
  const std::string path = TempPath("log_store_roundtrip.txt");
  const LogStore store = SampleStore();
  ASSERT_TRUE(store.SaveToFile(path).ok());

  auto loaded = LogStore::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_sessions(), 2);
  EXPECT_EQ(loaded->sessions()[0].query_image_id, 5);
  EXPECT_EQ(loaded->sessions()[0].entries.size(), 2u);
  EXPECT_EQ(loaded->sessions()[0].entries[1].image_id, 2);
  EXPECT_EQ(loaded->sessions()[0].entries[1].judgment, -1);
  EXPECT_EQ(loaded->sessions()[1].entries[0].image_id, 3);
  std::remove(path.c_str());
}

TEST(LogStoreTest, LoadMissingFileFails) {
  auto r = LogStore::LoadFromFile(TempPath("missing.txt"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(LogStoreTest, LoadRejectsBadHeader) {
  const std::string path = TempPath("bad_header.txt");
  std::ofstream(path) << "wrong v1 0\n";
  EXPECT_FALSE(LogStore::LoadFromFile(path).ok());
  std::remove(path.c_str());
}

TEST(LogStoreTest, LoadRejectsBadJudgment) {
  const std::string path = TempPath("bad_judgment.txt");
  std::ofstream(path) << "cbir_log v1 1\nsession 0 1\n3 5\n";
  auto r = LogStore::LoadFromFile(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(LogStoreTest, LoadRejectsTruncated) {
  const std::string path = TempPath("truncated.txt");
  std::ofstream(path) << "cbir_log v1 2\nsession 0 1\n3 1\n";
  EXPECT_FALSE(LogStore::LoadFromFile(path).ok());
  std::remove(path.c_str());
}

TEST(LogStoreTest, EmptyStoreRoundTrip) {
  const std::string path = TempPath("empty_store.txt");
  LogStore store;
  ASSERT_TRUE(store.SaveToFile(path).ok());
  auto loaded = LogStore::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_sessions(), 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cbir::logdb
