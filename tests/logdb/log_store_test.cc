#include "logdb/log_store.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace cbir::logdb {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

LogStore SampleStore() {
  LogStore store;
  LogSession s1;
  s1.query_image_id = 5;
  s1.entries = {LogEntry{1, 1}, LogEntry{2, -1}};
  LogSession s2;
  s2.query_image_id = 9;
  s2.entries = {LogEntry{3, 1}};
  store.Append(s1);
  store.Append(s2);
  return store;
}

TEST(LogStoreTest, AppendAndCount) {
  const LogStore store = SampleStore();
  EXPECT_EQ(store.num_sessions(), 2);
  EXPECT_EQ(store.TotalJudgments(), 3);
}

TEST(LogStoreTest, BuildMatrix) {
  const LogStore store = SampleStore();
  const RelevanceMatrix m = store.BuildMatrix(10);
  EXPECT_EQ(m.num_sessions(), 2);
  EXPECT_EQ(m.Value(0, 1), 1);
  EXPECT_EQ(m.Value(1, 3), 1);
}

TEST(LogStoreTest, BuildMatrixTruncated) {
  const LogStore store = SampleStore();
  const RelevanceMatrix m = store.BuildMatrix(10, /*max_sessions=*/1);
  EXPECT_EQ(m.num_sessions(), 1);
}

TEST(LogStoreTest, BuildMatrixTruncationClamps) {
  const LogStore store = SampleStore();
  EXPECT_EQ(store.BuildMatrix(10, 99).num_sessions(), 2);
}

TEST(LogStoreTest, SaveLoadRoundTrip) {
  const std::string path = TempPath("log_store_roundtrip.txt");
  const LogStore store = SampleStore();
  ASSERT_TRUE(store.SaveToFile(path).ok());

  auto loaded = LogStore::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_sessions(), 2);
  EXPECT_EQ(loaded->sessions()[0].query_image_id, 5);
  EXPECT_EQ(loaded->sessions()[0].entries.size(), 2u);
  EXPECT_EQ(loaded->sessions()[0].entries[1].image_id, 2);
  EXPECT_EQ(loaded->sessions()[0].entries[1].judgment, -1);
  EXPECT_EQ(loaded->sessions()[1].entries[0].image_id, 3);
  std::remove(path.c_str());
}

TEST(LogStoreTest, LoadMissingFileFails) {
  auto r = LogStore::LoadFromFile(TempPath("missing.txt"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(LogStoreTest, LoadRejectsBadHeader) {
  const std::string path = TempPath("bad_header.txt");
  std::ofstream(path) << "wrong v1 0\n";
  EXPECT_FALSE(LogStore::LoadFromFile(path).ok());
  std::remove(path.c_str());
}

TEST(LogStoreTest, LoadRejectsBadJudgment) {
  const std::string path = TempPath("bad_judgment.txt");
  std::ofstream(path) << "cbir_log v1 1\nsession 0 1\n3 5\n";
  auto r = LogStore::LoadFromFile(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(LogStoreTest, LoadRejectsTruncated) {
  const std::string path = TempPath("truncated.txt");
  std::ofstream(path) << "cbir_log v1 2\nsession 0 1\n3 1\n";
  EXPECT_FALSE(LogStore::LoadFromFile(path).ok());
  std::remove(path.c_str());
}

TEST(LogStoreTest, ConcurrentAppendsAllLand) {
  // The serving layer appends from many worker threads while readers build
  // matrices and count judgments; none of it may tear or drop sessions.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  LogStore store;
  std::vector<std::thread> pool;
  std::atomic<bool> go{false};
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&store, &go, t] {
      while (!go.load()) {
      }
      for (int i = 0; i < kPerThread; ++i) {
        LogSession session;
        session.query_image_id = t;
        session.entries = {LogEntry{i % 50, 1}, LogEntry{(i + 1) % 50, -1}};
        store.Append(std::move(session));
      }
    });
  }
  // Concurrent readers exercise the locked read paths while writers run.
  std::atomic<bool> stop_reader{false};
  std::thread reader([&store, &stop_reader] {
    while (!stop_reader.load()) {
      (void)store.num_sessions();
      (void)store.TotalJudgments();
      (void)store.BuildMatrix(50);
      (void)store.Snapshot();
    }
  });
  go.store(true);
  for (std::thread& t : pool) t.join();
  stop_reader.store(true);
  reader.join();

  EXPECT_EQ(store.num_sessions(), kThreads * kPerThread);
  EXPECT_EQ(store.TotalJudgments(), int64_t{kThreads * kPerThread * 2});
  // Per-thread append order is preserved (each thread's sessions appear in
  // its own program order even though threads interleave).
  std::vector<int> next_i(kThreads, 0);
  for (const LogSession& s : store.sessions()) {
    ASSERT_GE(s.query_image_id, 0);
    ASSERT_LT(s.query_image_id, kThreads);
    const int t = s.query_image_id;
    EXPECT_EQ(s.entries[0].image_id, next_i[static_cast<size_t>(t)] % 50);
    ++next_i[static_cast<size_t>(t)];
  }
}

TEST(LogStoreTest, SnapshotIsConsistentCopy) {
  LogStore store = SampleStore();
  const std::vector<LogSession> snapshot = store.Snapshot();
  store.Append(LogSession{1, {LogEntry{4, 1}}});
  EXPECT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(store.num_sessions(), 3);
}

TEST(LogStoreTest, CopyAndMoveKeepSessions) {
  const LogStore store = SampleStore();
  LogStore copy(store);
  EXPECT_EQ(copy.num_sessions(), 2);
  LogStore moved(std::move(copy));
  EXPECT_EQ(moved.num_sessions(), 2);
  LogStore assigned;
  assigned = moved;
  EXPECT_EQ(assigned.num_sessions(), 2);
  LogStore move_assigned;
  move_assigned = std::move(assigned);
  EXPECT_EQ(move_assigned.num_sessions(), 2);
  EXPECT_EQ(move_assigned.sessions()[0].query_image_id, 5);
}

TEST(LogStoreTest, EmptyStoreRoundTrip) {
  const std::string path = TempPath("empty_store.txt");
  LogStore store;
  ASSERT_TRUE(store.SaveToFile(path).ok());
  auto loaded = LogStore::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_sessions(), 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cbir::logdb
