#include "logdb/wal.h"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "logdb/log_store.h"

namespace cbir::logdb {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

LogSession Session(int query_id, int n) {
  LogSession s;
  s.query_image_id = query_id;
  for (int i = 0; i < n; ++i) {
    s.entries.push_back(LogEntry{query_id * 100 + i, i % 2 == 0 ? int8_t{1}
                                                               : int8_t{-1}});
  }
  return s;
}

void WriteBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

void AppendBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// A complete, valid WAL file holding `sessions` under `generation`.
std::vector<uint8_t> WalFile(uint64_t generation,
                             const std::vector<LogSession>& sessions) {
  std::vector<uint8_t> bytes = EncodeWalFileHeader(generation);
  for (const LogSession& s : sessions) {
    const std::vector<uint8_t> record = EncodeWalRecord(s);
    bytes.insert(bytes.end(), record.begin(), record.end());
  }
  return bytes;
}

void ExpectSessionsEqual(const std::vector<LogSession>& got,
                         const std::vector<LogSession>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(got[i].query_image_id, want[i].query_image_id);
    ASSERT_EQ(got[i].entries.size(), want[i].entries.size());
    for (size_t j = 0; j < got[i].entries.size(); ++j) {
      EXPECT_EQ(got[i].entries[j].image_id, want[i].entries[j].image_id);
      EXPECT_EQ(got[i].entries[j].judgment, want[i].entries[j].judgment);
    }
  }
}

// ------------------------------------------------------------ round trips --

TEST(WalTest, WriterRoundTripsThroughRecovery) {
  const std::string path = TempPath("wal_roundtrip.wal");
  std::remove(path.c_str());
  const std::vector<LogSession> sessions = {Session(1, 3), Session(2, 0),
                                            Session(3, 7)};
  uint64_t generation = 0;
  {
    auto writer = WalWriter::Open(path, 0, 0);
    ASSERT_TRUE(writer.ok()) << writer.status();
    generation = writer->generation();
    EXPECT_NE(generation, 0u);
    for (const LogSession& s : sessions) {
      ASSERT_TRUE(writer->Append(s).ok());
    }
  }  // destructor closes; no clean-shutdown footer exists by design
  WalRecoveryStats stats;
  auto recovered = RecoverWal(path, &stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  ExpectSessionsEqual(recovered.value(), sessions);
  EXPECT_EQ(stats.generation, generation);
  EXPECT_EQ(stats.sessions, 3u);
  EXPECT_EQ(stats.torn_bytes, 0u);
  EXPECT_TRUE(stats.torn_reason.empty());
  std::remove(path.c_str());
}

TEST(WalTest, MissingFileRecoversEmpty) {
  WalRecoveryStats stats;
  auto recovered = RecoverWal(TempPath("wal_never_existed.wal"), &stats);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered->empty());
  EXPECT_EQ(stats.generation, 0u);
  EXPECT_EQ(stats.valid_bytes, 0u);
}

// ---------------------------------------------- golden torn-tail fixtures --
//
// Each fixture is a hand-built WAL ending in a specific kind of tear; the
// committed prefix must survive, the tail must be measured and named.

TEST(WalTest, TornTailTruncatedRecordHeader) {
  const std::string path = TempPath("wal_torn_header.wal");
  const std::vector<LogSession> committed = {Session(1, 2), Session(2, 4)};
  std::vector<uint8_t> bytes = WalFile(7, committed);
  const size_t valid = bytes.size();
  // A crash mid-write left 3 bytes of the next record's length prefix.
  bytes.insert(bytes.end(), {0x21, 0x00, 0x00});
  WriteBytes(path, bytes);

  WalRecoveryStats stats;
  auto recovered = RecoverWal(path, &stats);
  ASSERT_TRUE(recovered.ok());
  ExpectSessionsEqual(recovered.value(), committed);
  EXPECT_EQ(stats.valid_bytes, valid);
  EXPECT_EQ(stats.torn_bytes, 3u);
  EXPECT_EQ(stats.torn_reason, "truncated record header");
  std::remove(path.c_str());
}

TEST(WalTest, TornTailTruncatedRecordBody) {
  const std::string path = TempPath("wal_torn_body.wal");
  const std::vector<LogSession> committed = {Session(1, 2)};
  std::vector<uint8_t> bytes = WalFile(7, committed);
  const size_t valid = bytes.size();
  // Full header of the next record but only part of its payload.
  const std::vector<uint8_t> next = EncodeWalRecord(Session(9, 5));
  bytes.insert(bytes.end(), next.begin(), next.end() - 4);
  WriteBytes(path, bytes);

  WalRecoveryStats stats;
  auto recovered = RecoverWal(path, &stats);
  ASSERT_TRUE(recovered.ok());
  ExpectSessionsEqual(recovered.value(), committed);
  EXPECT_EQ(stats.valid_bytes, valid);
  EXPECT_EQ(stats.torn_bytes, next.size() - 4);
  EXPECT_EQ(stats.torn_reason, "truncated record body");
  std::remove(path.c_str());
}

TEST(WalTest, TornTailCrcMismatch) {
  const std::string path = TempPath("wal_torn_crc.wal");
  const std::vector<LogSession> committed = {Session(1, 2), Session(2, 2)};
  std::vector<uint8_t> bytes = WalFile(7, committed);
  const size_t valid = bytes.size();
  std::vector<uint8_t> last = EncodeWalRecord(Session(3, 3));
  last.back() ^= 0x40;  // one flipped payload bit
  bytes.insert(bytes.end(), last.begin(), last.end());
  WriteBytes(path, bytes);

  WalRecoveryStats stats;
  auto recovered = RecoverWal(path, &stats);
  ASSERT_TRUE(recovered.ok());
  ExpectSessionsEqual(recovered.value(), committed);
  EXPECT_EQ(stats.valid_bytes, valid);
  EXPECT_EQ(stats.torn_bytes, last.size());
  EXPECT_EQ(stats.torn_reason, "crc mismatch");
  std::remove(path.c_str());
}

TEST(WalTest, TornTailHostileLength) {
  const std::string path = TempPath("wal_torn_length.wal");
  const std::vector<LogSession> committed = {Session(1, 1)};
  std::vector<uint8_t> bytes = WalFile(7, committed);
  const size_t valid = bytes.size();
  // A length prefix past the record bound must be treated as a tear, not an
  // allocation request.
  const uint32_t hostile = kMaxWalRecordBytes + 1;
  for (int i = 0; i < 4; ++i) bytes.push_back(uint8_t(hostile >> (8 * i)));
  for (int i = 0; i < 12; ++i) bytes.push_back(0xEE);
  WriteBytes(path, bytes);

  WalRecoveryStats stats;
  auto recovered = RecoverWal(path, &stats);
  ASSERT_TRUE(recovered.ok());
  ExpectSessionsEqual(recovered.value(), committed);
  EXPECT_EQ(stats.valid_bytes, valid);
  EXPECT_EQ(stats.torn_bytes, 16u);
  EXPECT_EQ(stats.torn_reason, "hostile record length");
  std::remove(path.c_str());
}

TEST(WalTest, TornTailUndecodablePayload) {
  const std::string path = TempPath("wal_torn_payload.wal");
  const std::vector<LogSession> committed = {Session(1, 1)};
  std::vector<uint8_t> bytes = WalFile(7, committed);
  // A record whose CRC is valid but whose payload claims more entries than
  // it holds: CRC framing alone must not be trusted.
  std::vector<uint8_t> payload;
  for (int i = 0; i < 4; ++i) payload.push_back(uint8_t(5 >> (8 * i)));
  const uint32_t claimed_entries = 1000;
  for (int i = 0; i < 4; ++i) {
    payload.push_back(uint8_t(claimed_entries >> (8 * i)));
  }
  const uint32_t crc = Crc32(payload.data(), payload.size());
  const uint32_t length = uint32_t(payload.size());
  for (int i = 0; i < 4; ++i) bytes.push_back(uint8_t(length >> (8 * i)));
  for (int i = 0; i < 4; ++i) bytes.push_back(uint8_t(crc >> (8 * i)));
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  WriteBytes(path, bytes);

  WalRecoveryStats stats;
  auto recovered = RecoverWal(path, &stats);
  ASSERT_TRUE(recovered.ok());
  ExpectSessionsEqual(recovered.value(), committed);
  EXPECT_EQ(stats.torn_reason, "undecodable payload");
  std::remove(path.c_str());
}

TEST(WalTest, TornTailTrailingGarbage) {
  const std::string path = TempPath("wal_torn_garbage.wal");
  const std::vector<LogSession> committed = {Session(1, 2), Session(2, 3)};
  std::vector<uint8_t> bytes = WalFile(7, committed);
  const size_t valid = bytes.size();
  std::vector<uint8_t> garbage;
  uint64_t x = 0xDEADBEEFCAFEF00Dull;
  for (int i = 0; i < 257; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    garbage.push_back(uint8_t(x));
  }
  WriteBytes(path, bytes);
  AppendBytes(path, garbage);

  WalRecoveryStats stats;
  auto recovered = RecoverWal(path, &stats);
  ASSERT_TRUE(recovered.ok());
  ExpectSessionsEqual(recovered.value(), committed);
  EXPECT_EQ(stats.valid_bytes, valid);
  EXPECT_EQ(stats.torn_bytes, garbage.size());
  EXPECT_FALSE(stats.torn_reason.empty());
  std::remove(path.c_str());
}

TEST(WalTest, TornFileHeaderRecoversEmpty) {
  const std::string path = TempPath("wal_torn_file_header.wal");
  // Seven bytes of a 16-byte file header: the crash hit the very first
  // write. Nothing committed, nothing to keep.
  WriteBytes(path, {0x43, 0x42, 0x57, 0x4C, 0x01, 0x00, 0x00});
  WalRecoveryStats stats;
  auto recovered = RecoverWal(path, &stats);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered->empty());
  EXPECT_EQ(stats.generation, 0u);
  EXPECT_EQ(stats.torn_reason, "truncated file header");
  std::remove(path.c_str());
}

TEST(WalTest, BadMagicRecoversEmpty) {
  const std::string path = TempPath("wal_bad_magic.wal");
  std::vector<uint8_t> bytes = WalFile(7, {Session(1, 1)});
  bytes[0] ^= 0xFF;
  WriteBytes(path, bytes);
  WalRecoveryStats stats;
  auto recovered = RecoverWal(path, &stats);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered->empty());
  EXPECT_EQ(stats.generation, 0u);
  EXPECT_EQ(stats.torn_reason, "bad file header");
  std::remove(path.c_str());
}

// ------------------------------------------------------- open-after-crash --

TEST(WalTest, OpenTruncatesTornTailBeforeAppending) {
  const std::string path = TempPath("wal_truncate_on_open.wal");
  const std::vector<LogSession> committed = {Session(1, 2)};
  std::vector<uint8_t> bytes = WalFile(7, committed);
  bytes.insert(bytes.end(), {0x10, 0x00});  // torn tail
  WriteBytes(path, bytes);

  WalRecoveryStats stats;
  auto recovered = RecoverWal(path, &stats);
  ASSERT_TRUE(recovered.ok());
  {
    auto writer = WalWriter::Open(path, stats.valid_bytes, stats.generation);
    ASSERT_TRUE(writer.ok()) << writer.status();
    EXPECT_EQ(writer->generation(), 7u);  // recovered generation is kept
    ASSERT_TRUE(writer->Append(Session(5, 3)).ok());
  }
  // Recovery after the truncating reopen: the torn bytes are gone, the old
  // prefix and the new record read back clean.
  WalRecoveryStats after;
  auto reread = RecoverWal(path, &after);
  ASSERT_TRUE(reread.ok());
  ExpectSessionsEqual(reread.value(), {Session(1, 2), Session(5, 3)});
  EXPECT_EQ(after.torn_bytes, 0u);
  EXPECT_EQ(after.generation, 7u);
  std::remove(path.c_str());
}

TEST(WalTest, ResetStartsFreshGeneration) {
  const std::string path = TempPath("wal_reset.wal");
  std::remove(path.c_str());
  auto writer = WalWriter::Open(path, 0, 0);
  ASSERT_TRUE(writer.ok());
  const uint64_t first = writer->generation();
  ASSERT_TRUE(writer->Append(Session(1, 2)).ok());
  ASSERT_TRUE(writer->Reset().ok());
  const uint64_t second = writer->generation();
  EXPECT_NE(second, first);
  EXPECT_NE(second, 0u);

  WalRecoveryStats stats;
  auto recovered = RecoverWal(path, &stats);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered->empty());
  EXPECT_EQ(stats.generation, second);
  std::remove(path.c_str());
}

// -------------------------------------------------- durable LogStore glue --

TEST(WalDurableStoreTest, AppendsSurviveReopen) {
  const std::string snapshot = TempPath("durable_snap.txt");
  const std::string wal = TempPath("durable_snap.wal");
  std::remove(snapshot.c_str());
  std::remove(wal.c_str());
  {
    auto store = LogStore::OpenDurable(snapshot, wal);
    ASSERT_TRUE(store.ok()) << store.status();
    EXPECT_TRUE(store->durable());
    store->Append(Session(1, 3));
    store->Append(Session(2, 1));
    EXPECT_TRUE(store->wal_status().ok());
  }  // no Compact, no SaveToFile: the WAL alone carries the sessions
  WalRecoveryStats recovery;
  auto reopened = LogStore::OpenDurable(snapshot, wal, &recovery);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->num_sessions(), 2);
  EXPECT_EQ(recovery.sessions, 2u);
  ExpectSessionsEqual(reopened->sessions(), {Session(1, 3), Session(2, 1)});
  std::remove(snapshot.c_str());
  std::remove(wal.c_str());
}

TEST(WalDurableStoreTest, CompactFoldsWalIntoSnapshot) {
  const std::string snapshot = TempPath("compact_snap.txt");
  const std::string wal = TempPath("compact_snap.wal");
  std::remove(snapshot.c_str());
  std::remove(wal.c_str());
  {
    auto store = LogStore::OpenDurable(snapshot, wal);
    ASSERT_TRUE(store.ok());
    store->Append(Session(1, 2));
    store->Append(Session(2, 2));
    ASSERT_TRUE(store->Compact().ok());
    store->Append(Session(3, 2));  // post-compaction append, WAL only
  }
  WalRecoveryStats recovery;
  auto reopened = LogStore::OpenDurable(snapshot, wal, &recovery);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->num_sessions(), 3);
  EXPECT_EQ(recovery.sessions, 1u);  // only the post-compaction session
  std::remove(snapshot.c_str());
  std::remove(wal.c_str());
}

TEST(WalDurableStoreTest, CrashBetweenSnapshotAndWalResetNeverDoubleCounts) {
  const std::string snapshot = TempPath("double_snap.txt");
  const std::string wal = TempPath("double_snap.wal");
  std::remove(snapshot.c_str());
  std::remove(wal.c_str());
  // Simulate the compaction crash window: the snapshot (tagged with the WAL
  // generation it folded) was published, but the process died before the
  // WAL was reset — the WAL still holds the very sessions the snapshot has.
  uint64_t generation = 0;
  {
    auto store = LogStore::OpenDurable(snapshot, wal);
    ASSERT_TRUE(store.ok());
    store->Append(Session(1, 2));
    store->Append(Session(2, 2));
  }
  {
    WalRecoveryStats pre;
    auto recovered = RecoverWal(wal, &pre);
    ASSERT_TRUE(recovered.ok());
    generation = pre.generation;
    LogStore folded;
    for (const LogSession& s : recovered.value()) folded.Append(s);
    ASSERT_TRUE(folded.SaveToFile(snapshot).ok());
    // Re-save with the generation trailer the way Compact does.
    std::ofstream out(snapshot, std::ios::app);
    out << "wal_gen " << generation << "\n";
  }
  // Recovery: snapshot says it folded this WAL generation, so the WAL's
  // sessions must be discarded, not replayed on top.
  WalRecoveryStats recovery;
  auto reopened = LogStore::OpenDurable(snapshot, wal, &recovery);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->num_sessions(), 2);  // not 4
  // And the store remains writable with a fresh WAL generation.
  reopened->Append(Session(3, 1));
  EXPECT_TRUE(reopened->wal_status().ok());
  auto again = LogStore::OpenDurable(snapshot, wal);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->num_sessions(), 3);
  std::remove(snapshot.c_str());
  std::remove(wal.c_str());
}

// Concurrency gate (runs under TSan in CI): appends from many threads while
// a compactor repeatedly folds the WAL must neither race nor lose an
// acknowledged session.
TEST(WalDurableStoreTest, ConcurrentAppendsWhileCompacting) {
  const std::string snapshot = TempPath("concurrent_snap.txt");
  const std::string wal = TempPath("concurrent_snap.wal");
  std::remove(snapshot.c_str());
  std::remove(wal.c_str());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  {
    auto store_or = LogStore::OpenDurable(snapshot, wal);
    ASSERT_TRUE(store_or.ok());
    LogStore store = std::move(store_or).value();
    std::atomic<bool> go{false};
    std::atomic<bool> done{false};
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
      pool.emplace_back([&store, &go, t] {
        while (!go.load()) {
        }
        for (int i = 0; i < kPerThread; ++i) {
          store.Append(LogSession{t, {LogEntry{i, 1}}});
        }
      });
    }
    std::thread compactor([&store, &go, &done] {
      while (!go.load()) {
      }
      while (!done.load()) {
        EXPECT_TRUE(store.Compact().ok());
      }
    });
    go.store(true);
    for (std::thread& t : pool) t.join();
    done.store(true);
    compactor.join();
    EXPECT_EQ(store.num_sessions(), kThreads * kPerThread);
    EXPECT_TRUE(store.wal_status().ok());
  }
  auto reopened = LogStore::OpenDurable(snapshot, wal);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->num_sessions(), kThreads * kPerThread);
  std::remove(snapshot.c_str());
  std::remove(wal.c_str());
}

}  // namespace
}  // namespace cbir::logdb
