#include "logdb/relevance_matrix.h"

#include <gtest/gtest.h>

namespace cbir::logdb {
namespace {

LogSession MakeSession(int query, std::vector<std::pair<int, int>> marks) {
  LogSession s;
  s.query_image_id = query;
  for (auto [id, j] : marks) {
    s.entries.push_back(LogEntry{id, static_cast<int8_t>(j)});
  }
  return s;
}

TEST(RelevanceMatrixTest, EmptyMatrix) {
  RelevanceMatrix m(10);
  EXPECT_EQ(m.num_images(), 10);
  EXPECT_EQ(m.num_sessions(), 0);
  EXPECT_EQ(m.CoveredImages(), 0);
  EXPECT_TRUE(m.LogVector(3).empty());
}

TEST(RelevanceMatrixTest, AddSessionAndQuery) {
  RelevanceMatrix m(5);
  m.AddSession(MakeSession(0, {{1, 1}, {2, -1}}));
  m.AddSession(MakeSession(3, {{1, -1}, {4, 1}}));
  EXPECT_EQ(m.num_sessions(), 2);
  EXPECT_EQ(m.Value(0, 1), 1);
  EXPECT_EQ(m.Value(0, 2), -1);
  EXPECT_EQ(m.Value(0, 3), 0);
  EXPECT_EQ(m.Value(1, 1), -1);
  EXPECT_EQ(m.Value(1, 4), 1);
}

TEST(RelevanceMatrixTest, LogVectorIsColumn) {
  RelevanceMatrix m(4);
  m.AddSession(MakeSession(0, {{1, 1}}));
  m.AddSession(MakeSession(0, {{1, -1}, {2, 1}}));
  m.AddSession(MakeSession(0, {{3, 1}}));
  // Raw (paper-literal) representation: negative_weight = 1.
  EXPECT_EQ(m.LogVector(1, 1.0), (la::Vec{1.0, -1.0, 0.0}));
  EXPECT_EQ(m.LogVector(2, 1.0), (la::Vec{0.0, 1.0, 0.0}));
  EXPECT_EQ(m.LogVector(0, 1.0), (la::Vec{0.0, 0.0, 0.0}));
}

TEST(RelevanceMatrixTest, DefaultLogVectorUsesRocchioWeighting) {
  RelevanceMatrix m(2);
  m.AddSession(MakeSession(0, {{0, 1}, {1, -1}}));
  EXPECT_EQ(m.LogVector(0), (la::Vec{1.0}));
  EXPECT_EQ(m.LogVector(1),
            (la::Vec{-RelevanceMatrix::kRocchioNegativeWeight}));
}

TEST(RelevanceMatrixTest, ToDenseMatrixMatchesLogVectors) {
  RelevanceMatrix m(3);
  m.AddSession(MakeSession(0, {{0, 1}, {2, -1}}));
  m.AddSession(MakeSession(1, {{1, 1}}));
  for (double weight : {1.0, 0.25, 0.0}) {
    const la::Matrix dense = m.ToDenseMatrix(weight);
    EXPECT_EQ(dense.rows(), 3u);
    EXPECT_EQ(dense.cols(), 2u);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(dense.Row(static_cast<size_t>(i)), m.LogVector(i, weight));
    }
  }
  EXPECT_DOUBLE_EQ(m.ToDenseMatrix(0.25).At(2, 0), -0.25);
}

TEST(RelevanceMatrixTest, IgnoresInvalidEntries) {
  RelevanceMatrix m(3);
  m.AddSession(MakeSession(0, {{-1, 1}, {7, 1}, {1, 0}, {2, 1}}));
  EXPECT_EQ(m.PositiveCount(), 1);
  EXPECT_EQ(m.Value(0, 2), 1);
}

TEST(RelevanceMatrixTest, DuplicateJudgmentKeepsLast) {
  RelevanceMatrix m(3);
  m.AddSession(MakeSession(0, {{1, 1}, {1, -1}}));
  EXPECT_EQ(m.Value(0, 1), -1);
  // Only one mark recorded despite the duplicate.
  EXPECT_EQ(m.PositiveCount() + m.NegativeCount(), 1);
}

TEST(RelevanceMatrixTest, Counts) {
  RelevanceMatrix m(6);
  m.AddSession(MakeSession(0, {{0, 1}, {1, 1}, {2, -1}}));
  m.AddSession(MakeSession(0, {{3, -1}}));
  EXPECT_EQ(m.PositiveCount(), 2);
  EXPECT_EQ(m.NegativeCount(), 2);
  EXPECT_EQ(m.CoveredImages(), 4);
}

TEST(RelevanceMatrixDeathTest, BoundsChecked) {
  RelevanceMatrix m(2);
  m.AddSession(MakeSession(0, {{0, 1}}));
  EXPECT_DEATH((void)m.Value(1, 0), "Check failed");
  EXPECT_DEATH((void)m.Value(0, 2), "Check failed");
  EXPECT_DEATH((void)m.LogVector(-1), "Check failed");
}

}  // namespace
}  // namespace cbir::logdb
