#include "retrieval/image_database.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace cbir::retrieval {
namespace {

DatabaseOptions SmallDbOptions() {
  DatabaseOptions options;
  options.corpus.num_categories = 3;
  options.corpus.images_per_category = 5;
  options.corpus.width = 64;
  options.corpus.height = 64;
  options.corpus.seed = 11;
  return options;
}

TEST(ImageDatabaseTest, BuildShapeAndLabels) {
  const ImageDatabase db = ImageDatabase::Build(SmallDbOptions());
  EXPECT_EQ(db.num_images(), 15);
  EXPECT_EQ(db.num_categories(), 3);
  EXPECT_EQ(db.features().rows(), 15u);
  EXPECT_EQ(db.features().cols(), 36u);
  EXPECT_EQ(db.category(0), 0);
  EXPECT_EQ(db.category(5), 1);
  EXPECT_EQ(db.category(14), 2);
  EXPECT_EQ(db.categories().size(), 15u);
  EXPECT_EQ(db.category_name(0), "antique");
}

TEST(ImageDatabaseTest, BuildIsDeterministic) {
  const ImageDatabase a = ImageDatabase::Build(SmallDbOptions());
  const ImageDatabase b = ImageDatabase::Build(SmallDbOptions());
  EXPECT_EQ(a.features().data(), b.features().data());
}

TEST(ImageDatabaseTest, ParallelAndSerialBuildsAgree) {
  DatabaseOptions serial = SmallDbOptions();
  serial.num_threads = 1;
  DatabaseOptions parallel = SmallDbOptions();
  parallel.num_threads = 4;
  const ImageDatabase a = ImageDatabase::Build(serial);
  const ImageDatabase b = ImageDatabase::Build(parallel);
  EXPECT_EQ(a.features().data(), b.features().data());
}

TEST(ImageDatabaseTest, NormalizedFeaturesAreStandardized) {
  const ImageDatabase db = ImageDatabase::Build(SmallDbOptions());
  ASSERT_TRUE(db.normalizer().fitted());
  const la::Matrix& f = db.features();
  for (size_t c = 0; c < f.cols(); ++c) {
    double mean = 0.0;
    for (size_t r = 0; r < f.rows(); ++r) mean += f.At(r, c);
    mean /= static_cast<double>(f.rows());
    EXPECT_NEAR(mean, 0.0, 1e-9) << "column " << c;
  }
}

TEST(ImageDatabaseTest, UnnormalizedBuild) {
  DatabaseOptions options = SmallDbOptions();
  options.normalize = false;
  const ImageDatabase db = ImageDatabase::Build(options);
  EXPECT_FALSE(db.normalizer().fitted());
}

TEST(ImageDatabaseTest, FeatureAccessorMatchesMatrixRow) {
  const ImageDatabase db = ImageDatabase::Build(SmallDbOptions());
  EXPECT_EQ(db.feature(7), db.features().Row(7));
}

TEST(ImageDatabaseTest, RenderImageMatchesCorpus) {
  const ImageDatabase db = ImageDatabase::Build(SmallDbOptions());
  const imaging::Image img = db.RenderImage(4);
  EXPECT_EQ(img.width(), 64);
  EXPECT_EQ(img.data(), db.corpus().GenerateById(4).data());
}

TEST(ImageDatabaseTest, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/db_roundtrip.txt";
  const ImageDatabase db = ImageDatabase::Build(SmallDbOptions());
  ASSERT_TRUE(db.SaveToFile(path).ok());

  auto loaded = ImageDatabase::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_images(), db.num_images());
  EXPECT_EQ(loaded->categories(), db.categories());
  ASSERT_EQ(loaded->features().rows(), db.features().rows());
  for (size_t r = 0; r < db.features().rows(); ++r) {
    for (size_t c = 0; c < db.features().cols(); ++c) {
      EXPECT_NEAR(loaded->features().At(r, c), db.features().At(r, c), 1e-12);
    }
  }
  EXPECT_TRUE(loaded->normalizer().fitted());
  std::remove(path.c_str());
}

TEST(ImageDatabaseTest, LoadMissingFileFails) {
  auto r = ImageDatabase::LoadFromFile(::testing::TempDir() + "/no-such-db");
  EXPECT_FALSE(r.ok());
}

TEST(ImageDatabaseDeathTest, CategoryOutOfRange) {
  const ImageDatabase db = ImageDatabase::Build(SmallDbOptions());
  EXPECT_DEATH((void)db.category(15), "Check failed");
  EXPECT_DEATH((void)db.feature(-1), "Check failed");
}

}  // namespace
}  // namespace cbir::retrieval
