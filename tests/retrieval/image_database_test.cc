#include "retrieval/image_database.h"

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "index/signature_index.h"

namespace cbir::retrieval {
namespace {

DatabaseOptions SmallDbOptions() {
  DatabaseOptions options;
  options.corpus.num_categories = 3;
  options.corpus.images_per_category = 5;
  options.corpus.width = 64;
  options.corpus.height = 64;
  options.corpus.seed = 11;
  return options;
}

TEST(ImageDatabaseTest, BuildShapeAndLabels) {
  const ImageDatabase db = ImageDatabase::Build(SmallDbOptions());
  EXPECT_EQ(db.num_images(), 15);
  EXPECT_EQ(db.num_categories(), 3);
  EXPECT_EQ(db.features().rows(), 15u);
  EXPECT_EQ(db.features().cols(), 36u);
  EXPECT_EQ(db.category(0), 0);
  EXPECT_EQ(db.category(5), 1);
  EXPECT_EQ(db.category(14), 2);
  EXPECT_EQ(db.categories().size(), 15u);
  EXPECT_EQ(db.category_name(0), "antique");
}

TEST(ImageDatabaseTest, BuildIsDeterministic) {
  const ImageDatabase a = ImageDatabase::Build(SmallDbOptions());
  const ImageDatabase b = ImageDatabase::Build(SmallDbOptions());
  EXPECT_EQ(a.features().data(), b.features().data());
}

TEST(ImageDatabaseTest, ParallelAndSerialBuildsAgree) {
  DatabaseOptions serial = SmallDbOptions();
  serial.num_threads = 1;
  DatabaseOptions parallel = SmallDbOptions();
  parallel.num_threads = 4;
  const ImageDatabase a = ImageDatabase::Build(serial);
  const ImageDatabase b = ImageDatabase::Build(parallel);
  EXPECT_EQ(a.features().data(), b.features().data());
}

TEST(ImageDatabaseTest, NormalizedFeaturesAreStandardized) {
  const ImageDatabase db = ImageDatabase::Build(SmallDbOptions());
  ASSERT_TRUE(db.normalizer().fitted());
  const la::Matrix& f = db.features();
  for (size_t c = 0; c < f.cols(); ++c) {
    double mean = 0.0;
    for (size_t r = 0; r < f.rows(); ++r) mean += f.At(r, c);
    mean /= static_cast<double>(f.rows());
    EXPECT_NEAR(mean, 0.0, 1e-9) << "column " << c;
  }
}

TEST(ImageDatabaseTest, UnnormalizedBuild) {
  DatabaseOptions options = SmallDbOptions();
  options.normalize = false;
  const ImageDatabase db = ImageDatabase::Build(options);
  EXPECT_FALSE(db.normalizer().fitted());
}

TEST(ImageDatabaseTest, FeatureAccessorMatchesMatrixRow) {
  const ImageDatabase db = ImageDatabase::Build(SmallDbOptions());
  EXPECT_EQ(db.feature(7), db.features().Row(7));
}

TEST(ImageDatabaseTest, RenderImageMatchesCorpus) {
  const ImageDatabase db = ImageDatabase::Build(SmallDbOptions());
  const imaging::Image img = db.RenderImage(4);
  EXPECT_EQ(img.width(), 64);
  EXPECT_EQ(img.data(), db.corpus().GenerateById(4).data());
}

TEST(ImageDatabaseTest, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/db_roundtrip.txt";
  const ImageDatabase db = ImageDatabase::Build(SmallDbOptions());
  ASSERT_TRUE(db.SaveToFile(path).ok());

  auto loaded = ImageDatabase::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_images(), db.num_images());
  EXPECT_EQ(loaded->categories(), db.categories());
  ASSERT_EQ(loaded->features().rows(), db.features().rows());
  for (size_t r = 0; r < db.features().rows(); ++r) {
    for (size_t c = 0; c < db.features().cols(); ++c) {
      EXPECT_NEAR(loaded->features().At(r, c), db.features().At(r, c), 1e-12);
    }
  }
  EXPECT_TRUE(loaded->normalizer().fitted());
  std::remove(path.c_str());
}

TEST(ImageDatabaseTest, LoadMissingFileFails) {
  auto r = ImageDatabase::LoadFromFile(::testing::TempDir() + "/no-such-db");
  EXPECT_FALSE(r.ok());
}

TEST(ImageDatabaseTest, SaveLoadRoundTripsSignatureIndex) {
  const std::string path = ::testing::TempDir() + "/db_index_roundtrip.txt";
  ImageDatabase db = ImageDatabase::Build(SmallDbOptions());
  IndexOptions index_options;
  index_options.mode = IndexMode::kSignature;
  index_options.signature.bits = 96;
  index_options.signature.candidate_factor = 3;
  index_options.signature.seed = 4242;
  db.BuildIndex(index_options);
  ASSERT_TRUE(db.SaveToFile(path).ok());

  auto loaded = ImageDatabase::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_NE(loaded->index(), nullptr);
  EXPECT_EQ(loaded->index()->name(), "signature");
  const auto* original = dynamic_cast<const SignatureIndex*>(db.index());
  const auto* restored =
      dynamic_cast<const SignatureIndex*>(loaded->index());
  ASSERT_NE(restored, nullptr);
  // Exact option + signature-block round trip: no re-encoding happened,
  // the packed words are bit-identical.
  EXPECT_EQ(restored->bits(), 96);
  EXPECT_EQ(restored->options().candidate_factor, 3);
  EXPECT_EQ(restored->options().seed, 4242u);
  EXPECT_EQ(restored->signatures(), original->signatures());
  // And the restored index answers queries identically.
  for (int q : {0, 7, 14}) {
    EXPECT_EQ(loaded->TopK(loaded->feature(q), 5), db.TopK(db.feature(q), 5));
  }
  std::remove(path.c_str());
}

TEST(ImageDatabaseTest, SaveLoadRoundTripsExactIndex) {
  const std::string path = ::testing::TempDir() + "/db_exact_roundtrip.txt";
  ImageDatabase db = ImageDatabase::Build(SmallDbOptions());
  db.BuildIndex(IndexOptions{});  // exact
  ASSERT_TRUE(db.SaveToFile(path).ok());
  auto loaded = ImageDatabase::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_NE(loaded->index(), nullptr);
  EXPECT_EQ(loaded->index()->name(), "exact");
  EXPECT_EQ(loaded->TopK(loaded->feature(3), 4), db.TopK(db.feature(3), 4));
  std::remove(path.c_str());
}

TEST(ImageDatabaseTest, LoadsV1FilesWithoutIndexSection) {
  // Files written before the index was serialized: header says v1 and the
  // stream ends after the normalizer block.
  const std::string path = ::testing::TempDir() + "/db_v1_compat.txt";
  const ImageDatabase db = ImageDatabase::Build(SmallDbOptions());
  ASSERT_TRUE(db.SaveToFile(path).ok());
  // Rewrite the v2 file as v1 by dropping the index section.
  {
    std::ifstream ifs(path);
    std::string content((std::istreambuf_iterator<char>(ifs)),
                        std::istreambuf_iterator<char>());
    const size_t index_pos = content.find("\nindex ");
    ASSERT_NE(index_pos, std::string::npos);
    content.resize(index_pos + 1);
    const size_t v2 = content.find("v2");
    ASSERT_NE(v2, std::string::npos);
    content.replace(v2, 2, "v1");
    std::ofstream(path, std::ios::trunc) << content;
  }
  auto loaded = ImageDatabase::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->index(), nullptr);
  EXPECT_EQ(loaded->categories(), db.categories());
  std::remove(path.c_str());
}

TEST(ImageDatabaseTest, LoadRejectsTruncatedSignatureBlock) {
  const std::string path = ::testing::TempDir() + "/db_truncated_sig.txt";
  ImageDatabase db = ImageDatabase::Build(SmallDbOptions());
  IndexOptions index_options;
  index_options.mode = IndexMode::kSignature;
  db.BuildIndex(index_options);
  ASSERT_TRUE(db.SaveToFile(path).ok());
  {
    std::ifstream ifs(path);
    std::string content((std::istreambuf_iterator<char>(ifs)),
                        std::istreambuf_iterator<char>());
    content.resize(content.size() - 40);  // chop into the hex block
    std::ofstream(path, std::ios::trunc) << content;
  }
  EXPECT_FALSE(ImageDatabase::LoadFromFile(path).ok());
  std::remove(path.c_str());
}

TEST(ImageDatabaseTest, FromFeaturesWrapsMatrix) {
  la::Matrix features(6, 4);
  for (size_t r = 0; r < 6; ++r) {
    for (size_t c = 0; c < 4; ++c) {
      features.At(r, c) = static_cast<double>(r * 4 + c);
    }
  }
  const ImageDatabase db = ImageDatabase::FromFeatures(
      features, std::vector<int>{0, 0, 1, 1, 2, 2}, 3);
  EXPECT_EQ(db.num_images(), 6);
  EXPECT_EQ(db.num_categories(), 3);
  EXPECT_EQ(db.category(3), 1);
  EXPECT_EQ(db.features().data(), features.data());
  EXPECT_FALSE(db.normalizer().fitted());
  // Rankings work without any index attached.
  EXPECT_EQ(db.TopK(db.feature(0), 3), (std::vector<int>{0, 1, 2}));
}

TEST(ImageDatabaseDeathTest, CategoryOutOfRange) {
  const ImageDatabase db = ImageDatabase::Build(SmallDbOptions());
  EXPECT_DEATH((void)db.category(15), "Check failed");
  EXPECT_DEATH((void)db.feature(-1), "Check failed");
}

}  // namespace
}  // namespace cbir::retrieval
