#include "retrieval/evaluator.h"

#include <gtest/gtest.h>

namespace cbir::retrieval {
namespace {

TEST(PaperScopesTest, MatchesTableRows) {
  EXPECT_EQ(PaperScopes(),
            (std::vector<int>{20, 30, 40, 50, 60, 70, 80, 90, 100}));
}

TEST(PrecisionAtNTest, Basic) {
  const std::vector<int> categories{0, 0, 1, 1, 0};
  const std::vector<int> ranked{0, 2, 1, 4, 3};
  // Query category 0: ranked relevance pattern = {1, 0, 1, 1, 0}.
  EXPECT_DOUBLE_EQ(PrecisionAtN(ranked, categories, 0, 1), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtN(ranked, categories, 0, 2), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtN(ranked, categories, 0, 4), 0.75);
  EXPECT_DOUBLE_EQ(PrecisionAtN(ranked, categories, 0, 5), 0.6);
}

TEST(PrecisionAtNTest, NoRelevant) {
  const std::vector<int> categories{1, 1, 1};
  const std::vector<int> ranked{0, 1, 2};
  EXPECT_DOUBLE_EQ(PrecisionAtN(ranked, categories, 0, 3), 0.0);
}

TEST(PrecisionAtScopesTest, MultipleScopes) {
  const std::vector<int> categories{0, 1, 0, 1};
  const std::vector<int> ranked{0, 2, 1, 3};
  const auto p = PrecisionAtScopes(ranked, categories, 0, {1, 2, 4});
  EXPECT_EQ(p.size(), 3u);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  EXPECT_DOUBLE_EQ(p[1], 1.0);
  EXPECT_DOUBLE_EQ(p[2], 0.5);
}

TEST(PrecisionAccumulatorTest, MeanOverQueries) {
  PrecisionAccumulator acc({10, 20});
  acc.Add({1.0, 0.5});
  acc.Add({0.0, 0.5});
  EXPECT_EQ(acc.num_queries(), 2);
  const auto mean = acc.MeanPrecision();
  EXPECT_DOUBLE_EQ(mean[0], 0.5);
  EXPECT_DOUBLE_EQ(mean[1], 0.5);
}

TEST(PrecisionAccumulatorTest, MapIsMeanOfScopeMeans) {
  PrecisionAccumulator acc({10, 20, 30});
  acc.Add({0.9, 0.6, 0.3});
  EXPECT_NEAR(acc.MeanAveragePrecision(), 0.6, 1e-12);
}

TEST(PrecisionAccumulatorDeathTest, RequiresMatchingArity) {
  PrecisionAccumulator acc({10, 20});
  EXPECT_DEATH(acc.Add({1.0}), "Check failed");
}

TEST(PrecisionAccumulatorDeathTest, MeanWithoutQueries) {
  PrecisionAccumulator acc({10});
  EXPECT_DEATH((void)acc.MeanPrecision(), "Check failed");
}

TEST(RelativeImprovementTest, Basic) {
  EXPECT_DOUBLE_EQ(RelativeImprovement(0.699, 0.491),
                   (0.699 - 0.491) / 0.491);
  EXPECT_DOUBLE_EQ(RelativeImprovement(0.5, 0.5), 0.0);
  EXPECT_LT(RelativeImprovement(0.4, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(RelativeImprovement(1.0, 0.0), 0.0);  // guarded
}

TEST(RecallAtKTest, Overlap) {
  const std::vector<int> exact{5, 2, 9, 1, 7, 3};
  // Identical prefix: full recall regardless of order inside the prefix.
  EXPECT_DOUBLE_EQ(RecallAtK({5, 2, 9, 1}, exact, 4), 1.0);
  EXPECT_DOUBLE_EQ(RecallAtK({1, 9, 2, 5}, exact, 4), 1.0);
  // Half the exact top-4 replaced by deeper/foreign ids.
  EXPECT_DOUBLE_EQ(RecallAtK({5, 2, 7, 42}, exact, 4), 0.5);
  // Entries beyond position k in `approx` do not count.
  EXPECT_DOUBLE_EQ(RecallAtK({42, 43, 9, 1, 5, 2}, exact, 4), 0.5);
  // Shorter approximate rankings lose the missing entries' overlap.
  EXPECT_DOUBLE_EQ(RecallAtK({5, 2}, exact, 4), 0.5);
  EXPECT_DOUBLE_EQ(RecallAtK({}, exact, 4), 0.0);
}

TEST(RecallAtKDeathTest, BadArguments) {
  EXPECT_DEATH((void)RecallAtK({1}, {1, 2}, 0), "Check failed");
  EXPECT_DEATH((void)RecallAtK({1}, {1, 2}, 3), "Check failed");
}

TEST(PrecisionAtNDeathTest, BadArguments) {
  const std::vector<int> categories{0, 0};
  const std::vector<int> ranked{0, 1};
  EXPECT_DEATH((void)PrecisionAtN(ranked, categories, 0, 0), "Check failed");
  EXPECT_DEATH((void)PrecisionAtN(ranked, categories, 0, 3), "Check failed");
}

}  // namespace
}  // namespace cbir::retrieval
