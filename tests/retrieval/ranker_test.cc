#include "retrieval/ranker.h"

#include <gtest/gtest.h>

namespace cbir::retrieval {
namespace {

la::Matrix PointsOnLine() {
  la::Matrix m(5, 1);
  m.SetRow(0, {0.0});
  m.SetRow(1, {10.0});
  m.SetRow(2, {3.0});
  m.SetRow(3, {-2.0});
  m.SetRow(4, {7.0});
  return m;
}

TEST(RankerTest, EuclideanOrdersByDistance) {
  const auto ranked = RankByEuclidean(PointsOnLine(), {1.0});
  // Distances from 1: id0=1, id1=9, id2=2, id3=3, id4=6.
  EXPECT_EQ(ranked, (std::vector<int>{0, 2, 3, 4, 1}));
}

TEST(RankerTest, EuclideanTopK) {
  const auto ranked = RankByEuclidean(PointsOnLine(), {1.0}, 2);
  EXPECT_EQ(ranked, (std::vector<int>{0, 2}));
}

TEST(RankerTest, EuclideanTopKLargerThanNReturnsAll) {
  const auto ranked = RankByEuclidean(PointsOnLine(), {1.0}, 99);
  EXPECT_EQ(ranked.size(), 5u);
}

TEST(RankerTest, EuclideanTieBreaksByIndex) {
  la::Matrix m(3, 1);
  m.SetRow(0, {1.0});
  m.SetRow(1, {-1.0});
  m.SetRow(2, {1.0});
  const auto ranked = RankByEuclidean(m, {0.0});
  EXPECT_EQ(ranked, (std::vector<int>{0, 1, 2}));
}

TEST(RankerTest, AllSquaredDistances) {
  const auto d = AllSquaredDistances(PointsOnLine(), {1.0});
  EXPECT_DOUBLE_EQ(d[0], 1.0);
  EXPECT_DOUBLE_EQ(d[1], 81.0);
  EXPECT_DOUBLE_EQ(d[3], 9.0);
}

TEST(RankerTest, ScoreDescOrdering) {
  const auto ranked = RankByScoreDesc({0.1, 0.9, -0.5, 0.9}, {});
  // Ties (ids 1 and 3 at 0.9) break on index.
  EXPECT_EQ(ranked, (std::vector<int>{1, 3, 0, 2}));
}

TEST(RankerTest, ScoreDescTieBreakByDistance) {
  // Equal scores everywhere: distances decide.
  const auto ranked =
      RankByScoreDesc({1.0, 1.0, 1.0}, {5.0, 1.0, 3.0});
  EXPECT_EQ(ranked, (std::vector<int>{1, 2, 0}));
}

TEST(RankerTest, ScoreDescTopK) {
  const auto ranked = RankByScoreDesc({0.1, 0.9, -0.5, 0.6}, {}, 2);
  EXPECT_EQ(ranked, (std::vector<int>{1, 3}));
}

TEST(RankerDeathTest, TiebreakSizeMismatch) {
  EXPECT_DEATH((void)RankByScoreDesc({1.0, 2.0}, {1.0}), "Check failed");
}

TEST(RankerDeathTest, QueryDimensionMismatch) {
  EXPECT_DEATH((void)RankByEuclidean(PointsOnLine(), {1.0, 2.0}),
               "Check failed");
}

}  // namespace
}  // namespace cbir::retrieval
