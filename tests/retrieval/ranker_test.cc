#include "retrieval/ranker.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cbir::retrieval {
namespace {

la::Matrix PointsOnLine() {
  la::Matrix m(5, 1);
  m.SetRow(0, {0.0});
  m.SetRow(1, {10.0});
  m.SetRow(2, {3.0});
  m.SetRow(3, {-2.0});
  m.SetRow(4, {7.0});
  return m;
}

TEST(RankerTest, EuclideanOrdersByDistance) {
  const auto ranked = RankByEuclidean(PointsOnLine(), {1.0});
  // Distances from 1: id0=1, id1=9, id2=2, id3=3, id4=6.
  EXPECT_EQ(ranked, (std::vector<int>{0, 2, 3, 4, 1}));
}

TEST(RankerTest, EuclideanTopK) {
  const auto ranked = RankByEuclidean(PointsOnLine(), {1.0}, 2);
  EXPECT_EQ(ranked, (std::vector<int>{0, 2}));
}

TEST(RankerTest, EuclideanTopKLargerThanNReturnsAll) {
  const auto ranked = RankByEuclidean(PointsOnLine(), {1.0}, 99);
  EXPECT_EQ(ranked.size(), 5u);
}

TEST(RankerTest, EuclideanTieBreaksByIndex) {
  la::Matrix m(3, 1);
  m.SetRow(0, {1.0});
  m.SetRow(1, {-1.0});
  m.SetRow(2, {1.0});
  const auto ranked = RankByEuclidean(m, {0.0});
  EXPECT_EQ(ranked, (std::vector<int>{0, 1, 2}));
}

TEST(RankerTest, AllSquaredDistances) {
  const auto d = AllSquaredDistances(PointsOnLine(), {1.0});
  EXPECT_DOUBLE_EQ(d[0], 1.0);
  EXPECT_DOUBLE_EQ(d[1], 81.0);
  EXPECT_DOUBLE_EQ(d[3], 9.0);
}

TEST(RankerTest, ScoreDescOrdering) {
  const auto ranked = RankByScoreDesc({0.1, 0.9, -0.5, 0.9}, {});
  // Ties (ids 1 and 3 at 0.9) break on index.
  EXPECT_EQ(ranked, (std::vector<int>{1, 3, 0, 2}));
}

TEST(RankerTest, ScoreDescTieBreakByDistance) {
  // Equal scores everywhere: distances decide.
  const auto ranked =
      RankByScoreDesc({1.0, 1.0, 1.0}, {5.0, 1.0, 3.0});
  EXPECT_EQ(ranked, (std::vector<int>{1, 2, 0}));
}

TEST(RankerTest, ScoreDescTopK) {
  const auto ranked = RankByScoreDesc({0.1, 0.9, -0.5, 0.6}, {}, 2);
  EXPECT_EQ(ranked, (std::vector<int>{1, 3}));
}

TEST(RankerTest, TopKEqualsFullSortPrefix) {
  // The nth_element-based top-k path must return exactly the first k entries
  // of the full ranking, for every k, including with duplicate distances.
  Rng rng(77);
  la::Matrix corpus(257, 5);
  for (size_t r = 0; r < corpus.rows(); ++r) {
    for (size_t c = 0; c < corpus.cols(); ++c) {
      // Quantized values create plenty of exact distance ties.
      corpus.At(r, c) = std::round(rng.Gaussian() * 2.0) / 2.0;
    }
  }
  const la::Vec query = corpus.Row(3);
  const std::vector<int> full = RankByEuclidean(corpus, query);
  ASSERT_EQ(full.size(), corpus.rows());
  for (int k : {1, 2, 7, 20, 100, 256, 257, 500}) {
    const std::vector<int> topk = RankByEuclidean(corpus, query, k);
    const size_t expect =
        std::min<size_t>(static_cast<size_t>(k), corpus.rows());
    ASSERT_EQ(topk.size(), expect) << "k=" << k;
    for (size_t i = 0; i < expect; ++i) {
      EXPECT_EQ(topk[i], full[i]) << "k=" << k << " i=" << i;
    }
  }
}

TEST(RankerTest, ScoreTopKEqualsFullSortPrefix) {
  Rng rng(78);
  const size_t n = 300;
  std::vector<double> scores(n), dists(n);
  for (size_t i = 0; i < n; ++i) {
    scores[i] = std::round(rng.Gaussian() * 4.0) / 4.0;  // many ties
    dists[i] = rng.Uniform();
  }
  const std::vector<int> full = RankByScoreDesc(scores, dists);
  for (int k : {1, 5, 50, 299, 300}) {
    const std::vector<int> topk = RankByScoreDesc(scores, dists, k);
    ASSERT_EQ(topk.size(), static_cast<size_t>(k));
    for (size_t i = 0; i < topk.size(); ++i) {
      EXPECT_EQ(topk[i], full[i]) << "k=" << k << " i=" << i;
    }
  }
}

TEST(RankerTest, LargeCorpusParallelScanMatchesSerial) {
  // Big enough to cross the parallel-scan threshold; distances must be
  // bit-identical to the direct serial formula.
  Rng rng(79);
  la::Matrix corpus(5000, 36);
  for (size_t r = 0; r < corpus.rows(); ++r) {
    for (size_t c = 0; c < corpus.cols(); ++c) {
      corpus.At(r, c) = rng.Gaussian();
    }
  }
  const la::Vec query = corpus.Row(11);
  const std::vector<double> dist = AllSquaredDistances(corpus, query);
  for (size_t r = 0; r < corpus.rows(); r += 271) {
    EXPECT_DOUBLE_EQ(dist[r], la::SquaredDistance(corpus.Row(r), query));
  }
  EXPECT_DOUBLE_EQ(dist[11], 0.0);
}

TEST(RankerDeathTest, TiebreakSizeMismatch) {
  EXPECT_DEATH((void)RankByScoreDesc({1.0, 2.0}, {1.0}), "Check failed");
}

TEST(RankerDeathTest, QueryDimensionMismatch) {
  EXPECT_DEATH((void)RankByEuclidean(PointsOnLine(), {1.0, 2.0}),
               "Check failed");
}

}  // namespace
}  // namespace cbir::retrieval
