#include "obs/slo.h"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/structured_log.h"

namespace cbir::obs {
namespace {

SloOptions OneSecondWindow() {
  SloOptions options;
  options.tick_seconds = 1;
  options.windows_s = {1};
  return options;
}

// ------------------------------------------- windowed histogram plumbing --

TEST(LatencyHistogramCountsTest, DeltaCountsIsolateTheWindow) {
  LatencyHistogram h;
  for (int i = 0; i < 10; ++i) h.Record(100.0);
  const LatencyHistogram::Counts before = h.SnapshotCounts();
  for (int i = 0; i < 20; ++i) h.Record(5000.0);
  const LatencyHistogram::Counts after = h.SnapshotCounts();

  const LatencyHistogram::Counts delta =
      LatencyHistogram::DeltaCounts(after, before);
  const LatencySummary window = LatencyHistogram::SummarizeCounts(delta);
  EXPECT_EQ(window.count, 20u);
  // Only the second batch is in the window: its percentiles sit at the
  // 5000us bucket's upper bound, nowhere near the earlier 100us samples.
  EXPECT_GT(window.p50_us, 4000.0);
  EXPECT_LE(window.p50_us, 6000.0);
  // The full-histogram summary still sees all 30.
  EXPECT_EQ(LatencyHistogram::SummarizeCounts(after).count, 30u);
}

TEST(LatencyHistogramCountsTest, DeltaCountsSaturatesNeverUnderflows) {
  LatencyHistogram a;
  LatencyHistogram b;
  b.Record(10.0);
  // a - b with b ahead: clamps to zero instead of wrapping.
  const LatencyHistogram::Counts delta = LatencyHistogram::DeltaCounts(
      a.SnapshotCounts(), b.SnapshotCounts());
  EXPECT_EQ(LatencyHistogram::SummarizeCounts(delta).count, 0u);
}

TEST(LatencyHistogramCountsTest, CountAtOrAboveIsConservative) {
  LatencyHistogram h;
  for (int i = 0; i < 50; ++i) h.Record(100.0);
  for (int i = 0; i < 50; ++i) h.Record(10000.0);
  const LatencyHistogram::Counts counts = h.SnapshotCounts();
  // Everything at 10000us lies in buckets fully above 1000us.
  EXPECT_EQ(LatencyHistogram::CountAtOrAbove(counts, 1000), 50u);
  // A threshold inside a sample's own bucket excludes that straddling
  // bucket (conservative: never over-reports the burn).
  EXPECT_EQ(LatencyHistogram::CountAtOrAbove(counts, 100), 50u);
  EXPECT_EQ(LatencyHistogram::CountAtOrAbove(counts, 1), 100u);
}

// ---------------------------------------------------------- the tracker --

TEST(SloTrackerTest, WindowedCountsAreDeltasNotLifetimeTotals) {
  MetricsRegistry registry;
  SloTracker tracker(&registry, OneSecondWindow());
  LatencyHistogram* latency = registry.GetHistogram("cbir_net_request_us");
  Counter* requests = registry.GetCounter("cbir_net_requests_total");

  for (int i = 0; i < 10; ++i) latency->Record(100.0);
  requests->Increment(10);
  tracker.Tick();
  for (int i = 0; i < 20; ++i) latency->Record(5000.0);
  requests->Increment(20);
  tracker.Tick();

  const SloState state = tracker.state();
  EXPECT_FALSE(state.configured);
  EXPECT_FALSE(state.breached);
  EXPECT_EQ(state.ticks, 2u);
  ASSERT_EQ(state.windows.size(), 1u);
  const SloWindowState& w = state.windows[0];
  EXPECT_EQ(w.requests, 20u);       // second tick's traffic only
  EXPECT_EQ(w.latency.count, 20u);
  EXPECT_GT(w.latency.p99_us, 4000.0);  // the 100us batch is outside
  // Windowed p99 lands in the registry as a labeled gauge.
  bool found = false;
  for (const GaugeSample& g : registry.Snapshot().gauges) {
    if (g.name == "cbir_slo_window_p99_us" && g.label_value == "1s") {
      found = true;
      EXPECT_GT(g.value, 4000);
    }
  }
  EXPECT_TRUE(found);
}

TEST(SloTrackerTest, LatencyBurnBreachesAndAlerts) {
  MetricsRegistry registry;
  std::ostringstream log_out;
  StructuredLog alert_log(&log_out);
  SloOptions options = OneSecondWindow();
  options.query_p99_ms = 1.0;  // p99 must stay under 1000us
  SloTracker tracker(&registry, options, &alert_log);
  LatencyHistogram* latency = registry.GetHistogram("cbir_net_request_us");
  Counter* requests = registry.GetCounter("cbir_net_requests_total");

  tracker.Tick();  // baseline
  for (int i = 0; i < 50; ++i) latency->Record(100.0);
  for (int i = 0; i < 50; ++i) latency->Record(10000.0);
  requests->Increment(100);
  tracker.Tick();

  const SloState state = tracker.state();
  EXPECT_TRUE(state.configured);
  ASSERT_EQ(state.windows.size(), 1u);
  // Half the window over a 1% budget: burn rate 50x.
  EXPECT_NEAR(state.windows[0].latency_burn, 50.0, 1.0);
  EXPECT_TRUE(state.windows[0].breached);
  EXPECT_TRUE(state.breached);
  bool breach_gauge = false;
  for (const GaugeSample& g : registry.Snapshot().gauges) {
    if (g.name == "cbir_slo_breach") breach_gauge = g.value == 1;
  }
  EXPECT_TRUE(breach_gauge);
  EXPECT_NE(log_out.str().find("event=slo_breach"), std::string::npos)
      << log_out.str();
  EXPECT_NE(tracker.FormatState().find("BREACH"), std::string::npos);
}

TEST(SloTrackerTest, ErrorBurnUsesTheConfiguredObjective) {
  MetricsRegistry registry;
  SloOptions options = OneSecondWindow();
  options.error_ratio = 0.1;
  SloTracker tracker(&registry, options);
  Counter* requests = registry.GetCounter("cbir_net_requests_total");
  Counter* errors = registry.GetCounter("cbir_net_responses_error_total");

  tracker.Tick();
  requests->Increment(100);
  errors->Increment(20);  // 20% errors against a 10% objective
  tracker.Tick();

  const SloState state = tracker.state();
  ASSERT_EQ(state.windows.size(), 1u);
  EXPECT_NEAR(state.windows[0].error_ratio, 0.2, 1e-9);
  EXPECT_NEAR(state.windows[0].error_burn, 2.0, 1e-9);
  EXPECT_TRUE(state.breached);

  // Errors back under budget: the 1s window forgets the bad tick.
  requests->Increment(100);
  tracker.Tick();
  EXPECT_FALSE(tracker.state().breached);
}

TEST(SloTrackerTest, NoObjectivesStillTracksWindowedPercentiles) {
  MetricsRegistry registry;
  SloTracker tracker(&registry, OneSecondWindow());
  LatencyHistogram* latency = registry.GetHistogram("cbir_net_request_us");

  tracker.Tick();
  for (int i = 0; i < 100; ++i) latency->Record(50000.0);  // huge latencies
  registry.GetCounter("cbir_net_requests_total")->Increment(100);
  tracker.Tick();

  const SloState state = tracker.state();
  EXPECT_FALSE(state.configured);
  EXPECT_FALSE(state.breached);  // nothing to breach without objectives
  ASSERT_EQ(state.windows.size(), 1u);
  EXPECT_GT(state.windows[0].latency.p99_us, 40000.0);
  EXPECT_EQ(state.windows[0].latency_burn, 0.0);
  const std::string formatted = tracker.FormatState();
  EXPECT_NE(formatted.find("no objectives configured"), std::string::npos)
      << formatted;
  EXPECT_NE(formatted.find("windowed p99="), std::string::npos) << formatted;
}

TEST(SloTrackerTest, MultiWindowRingDistinguishesFastAndSlowBurn) {
  MetricsRegistry registry;
  SloOptions options;
  options.tick_seconds = 1;
  options.windows_s = {1, 4};
  options.error_ratio = 0.2;  // the 4s window's 10/40 = 0.25 burns past it
  SloTracker tracker(&registry, options);
  Counter* requests = registry.GetCounter("cbir_net_requests_total");
  Counter* errors = registry.GetCounter("cbir_net_responses_error_total");
  // One bad tick, then three clean ones.
  tracker.Tick();
  requests->Increment(10);
  errors->Increment(10);
  tracker.Tick();
  for (int t = 0; t < 3; ++t) {
    requests->Increment(10);
    tracker.Tick();
  }
  const SloState state = tracker.state();
  ASSERT_EQ(state.windows.size(), 2u);
  // The 1s window has moved past the bad tick (no breach); the 4s window
  // still sees it — the slow-burn alarm outlives the fast one.
  EXPECT_EQ(state.windows[0].errors, 0u);
  EXPECT_FALSE(state.windows[0].breached);
  EXPECT_EQ(state.windows[1].errors, 10u);
  EXPECT_EQ(state.windows[1].requests, 40u);
  EXPECT_TRUE(state.windows[1].breached);
}

}  // namespace
}  // namespace cbir::obs
