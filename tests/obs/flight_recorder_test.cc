#include "obs/flight_recorder.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cbir::obs {
namespace {

RequestTrace MakeTrace(uint64_t id) {
  RequestTrace trace(id);
  trace.AddSpan("decode", 0, 10, 0);
  trace.AddSpan("solve", 12, 100, 0);
  trace.AddCounter("smo_iterations", 7);
  return trace;
}

TEST(FlightRecorderTest, ErrorsAlwaysCapturedHealthyDroppedWhenSamplingOff) {
  FlightRecorderOptions options;
  options.capacity = 8;
  options.sample_every = 0;  // only errors (and slow, but threshold is off)
  FlightRecorder recorder(options);
  const RequestTrace trace = MakeTrace(0x42);

  for (int i = 0; i < 5; ++i) recorder.Record(trace, 3, 0, 100);
  recorder.Record(trace, 5, 14, 250);  // non-OK status
  recorder.Record(trace, 5, 2, 250);

  EXPECT_EQ(recorder.seen(), 7u);
  EXPECT_EQ(recorder.seen_errors(), 2u);
  EXPECT_EQ(recorder.captured_errors(), 2u);
  EXPECT_EQ(recorder.captured(), 2u);
  const std::vector<FlightRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 2u);
  for (const FlightRecord& r : records) {
    EXPECT_STREQ(r.reason, "error");
    EXPECT_EQ(r.trace_id, 0x42u);
    EXPECT_EQ(r.spans.size(), 2u);
    EXPECT_EQ(r.counters.size(), 1u);
  }
}

TEST(FlightRecorderTest, SlowThresholdCapturesAtExactlyThreshold) {
  FlightRecorderOptions options;
  options.sample_every = 0;
  options.slow_threshold_ms = 2;
  FlightRecorder recorder(options);
  const RequestTrace trace = MakeTrace(1);

  recorder.Record(trace, 3, 0, 1999);  // just under: dropped
  recorder.Record(trace, 3, 0, 2000);  // exactly at: captured
  EXPECT_EQ(recorder.captured_slow(), 1u);
  const std::vector<FlightRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_STREQ(records[0].reason, "slow");
  EXPECT_EQ(records[0].total_us, 2000u);
}

TEST(FlightRecorderTest, SamplingIsDeterministicAndStartsAtFirstRequest) {
  FlightRecorderOptions options;
  options.sample_every = 4;
  FlightRecorder recorder(options);
  const RequestTrace trace = MakeTrace(2);

  // Healthy requests 1..8: the 1st and 5th are taken (tick 0 and 4).
  for (int i = 0; i < 8; ++i) recorder.Record(trace, 3, 0, 50);
  EXPECT_EQ(recorder.captured_sampled(), 2u);
  // An error does not consume a sampling tick: the next healthy request
  // after 8 healthy ones is tick 8 -> sampled again.
  recorder.Record(trace, 3, 9, 50);
  recorder.Record(trace, 3, 0, 50);
  EXPECT_EQ(recorder.captured_sampled(), 3u);
  EXPECT_EQ(recorder.captured_errors(), 1u);
}

TEST(FlightRecorderTest, RingKeepsNewestAndSnapshotIsOldestFirst) {
  FlightRecorderOptions options;
  options.capacity = 4;
  options.sample_every = 0;
  FlightRecorder recorder(options);

  for (uint64_t i = 1; i <= 10; ++i) {
    recorder.Record(MakeTrace(i), 3, 7, i * 10);
  }
  const std::vector<FlightRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 4u);
  // Captures 7..10 survive, in capture order.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(records[i].sequence, 7 + i);
    EXPECT_EQ(records[i].trace_id, 7 + i);
  }
}

TEST(FlightRecorderTest, DumpCarriesAccountingHeaderAndSpanTrees) {
  FlightRecorderOptions options;
  options.capacity = 8;
  options.sample_every = 2;
  FlightRecorder recorder(options);
  recorder.Record(MakeTrace(0x1f3a), 5, 0, 4211);  // sampled (tick 0)
  recorder.Record(MakeTrace(0xbeef), 3, 14, 99);   // error

  const std::string dump = recorder.Dump();
  EXPECT_NE(dump.find("flight recorder: capacity=8 seen=2 captured=2 "
                      "seen_errors=1 captured_errors=1 captured_slow=0 "
                      "captured_sampled=1 sample_every=2"),
            std::string::npos)
      << dump;
  EXPECT_NE(dump.find("record seq=1 reason=sampled type=5 status=0 "
                      "trace 0x1f3a total=4211us"),
            std::string::npos)
      << dump;
  EXPECT_NE(dump.find("record seq=2 reason=error type=3 status=14 "
                      "trace 0xbeef total=99us"),
            std::string::npos)
      << dump;
  EXPECT_NE(dump.find("\n  decode 10us @0us"), std::string::npos) << dump;
  EXPECT_NE(dump.find("\n  smo_iterations=7"), std::string::npos) << dump;
}

TEST(FlightRecorderTest, EmptyRecorderDumpsHeaderOnly) {
  FlightRecorder recorder;
  const std::string dump = recorder.Dump();
  EXPECT_NE(dump.find("flight recorder: capacity=256 seen=0"),
            std::string::npos)
      << dump;
  EXPECT_EQ(dump.find("record seq="), std::string::npos) << dump;
}

// TSan coverage: concurrent recorders against a small ring (maximum slot
// contention) while a reader dumps — and the error accounting still exact.
TEST(FlightRecorderTest, ConcurrentRecordAndDump) {
  FlightRecorderOptions options;
  options.capacity = 4;
  options.sample_every = 3;
  FlightRecorder recorder(options);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::string dump = recorder.Dump();
      EXPECT_NE(dump.find("flight recorder:"), std::string::npos);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const RequestTrace trace = MakeTrace(
            static_cast<uint64_t>(t) << 32 | static_cast<uint64_t>(i));
        // Every odd record is an error; evens are healthy (some sampled).
        recorder.Record(trace, 3, i % 2 == 1 ? 14 : 0, 100);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(recorder.seen(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(recorder.seen_errors(), uint64_t{kThreads} * kPerThread / 2);
  // The contract the chaos job relies on: every error was captured.
  EXPECT_EQ(recorder.captured_errors(), recorder.seen_errors());
  const std::vector<FlightRecord> records = recorder.Snapshot();
  EXPECT_EQ(records.size(), 4u);
  // Records are copied under their slot lock: each survivor is internally
  // consistent (never a torn mix of two requests).
  for (const FlightRecord& r : records) {
    EXPECT_EQ(r.spans.size(), 2u);
    ASSERT_EQ(r.counters.size(), 1u);
    EXPECT_EQ(r.counters[0].value, 7);
  }
  recorder.Record(MakeTrace(1), 3, 5, 10);
  EXPECT_EQ(recorder.captured_errors(), recorder.seen_errors());
}

}  // namespace
}  // namespace cbir::obs
