#include "obs/structured_log.h"

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace cbir::obs {
namespace {

std::vector<std::string> Lines(const std::ostringstream& os) {
  std::vector<std::string> out;
  std::istringstream in(os.str());
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

TEST(Iso8601NowTest, ShapeIsUtcWithMilliseconds) {
  const std::string ts = Iso8601Now();
  // 2026-08-08T12:34:56.789Z
  ASSERT_EQ(ts.size(), 24u) << ts;
  EXPECT_EQ(ts[4], '-');
  EXPECT_EQ(ts[7], '-');
  EXPECT_EQ(ts[10], 'T');
  EXPECT_EQ(ts[13], ':');
  EXPECT_EQ(ts[16], ':');
  EXPECT_EQ(ts[19], '.');
  EXPECT_EQ(ts[23], 'Z');
}

TEST(StructuredLogTest, EmitsTimestampedKeyValueLine) {
  std::ostringstream os;
  StructuredLog log(&os);
  log.Log("conn_accepted", {{"id", "17"}, {"peer", "10.0.0.1"}});
  const std::vector<std::string> lines = Lines(os);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].rfind("ts=", 0), 0u) << lines[0];
  EXPECT_NE(lines[0].find(" event=conn_accepted id=17 peer=10.0.0.1"),
            std::string::npos)
      << lines[0];
  EXPECT_EQ(log.lines_written(), 1u);
  EXPECT_EQ(log.lines_suppressed(), 0u);
}

TEST(StructuredLogTest, RateLimitSuppressesAndReportsCount) {
  std::ostringstream os;
  StructuredLog log(&os, /*min_interval_seconds=*/1000.0);
  log.Log("conn_accepted", {{"id", "1"}});   // first always emits
  log.Log("conn_accepted", {{"id", "2"}});   // suppressed
  log.Log("conn_accepted", {{"id", "3"}});   // suppressed
  EXPECT_EQ(log.lines_written(), 1u);
  EXPECT_EQ(log.lines_suppressed(), 2u);
  // LogAlways bypasses the limit and carries the pending suppressed count,
  // so the storm's size is never lost.
  log.LogAlways("conn_accepted", {{"id", "4"}});
  const std::vector<std::string> lines = Lines(os);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[1].find("id=4 suppressed=2"), std::string::npos)
      << lines[1];
  EXPECT_EQ(log.lines_written(), 2u);
}

TEST(StructuredLogTest, RateLimitIsPerEventName) {
  std::ostringstream os;
  StructuredLog log(&os, 1000.0);
  log.Log("conn_accepted", {{"id", "1"}});
  log.Log("conn_closed", {{"id", "1"}});  // different event: not suppressed
  EXPECT_EQ(log.lines_written(), 2u);
  EXPECT_EQ(log.lines_suppressed(), 0u);
}

TEST(StructuredLogTest, ZeroIntervalNeverSuppresses) {
  std::ostringstream os;
  StructuredLog log(&os, 0.0);
  for (int i = 0; i < 10; ++i) log.Log("tick", {});
  EXPECT_EQ(log.lines_written(), 10u);
  EXPECT_EQ(log.lines_suppressed(), 0u);
}

}  // namespace
}  // namespace cbir::obs
