#include "obs/trace.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace cbir::obs {
namespace {

// ------------------------------------------------------------ trace scope --

TEST(TraceScopeTest, InstallsAndRestoresCurrentTrace) {
  EXPECT_EQ(CurrentTrace(), nullptr);
  RequestTrace outer(1);
  {
    TraceScope scope(&outer);
    EXPECT_EQ(CurrentTrace(), &outer);
    RequestTrace inner(2);
    {
      TraceScope nested(&inner);
      EXPECT_EQ(CurrentTrace(), &inner);
    }
    EXPECT_EQ(CurrentTrace(), &outer);
  }
  EXPECT_EQ(CurrentTrace(), nullptr);
}

TEST(TraceScopeTest, CurrentTraceIsPerThread) {
  RequestTrace trace(7);
  TraceScope scope(&trace);
  RequestTrace* seen = &trace;
  std::thread other([&seen] { seen = CurrentTrace(); });
  other.join();
  EXPECT_EQ(seen, nullptr);  // the scope binds this thread only
  EXPECT_EQ(CurrentTrace(), &trace);
}

// ------------------------------------------------------------ scoped span --

TEST(ScopedSpanTest, RecordsHistogramWithoutTrace) {
  ASSERT_EQ(CurrentTrace(), nullptr);
  LatencyHistogram h;
  { ScopedSpan span("solve", &h); }
  EXPECT_EQ(h.Summarize().count, 1u);
}

TEST(ScopedSpanTest, AttachesSpanToCurrentTrace) {
  RequestTrace trace(0xABC);
  {
    TraceScope scope(&trace);
    { ScopedSpan span("admission"); }
    { ScopedSpan span("solve"); }
  }
  ASSERT_EQ(trace.spans().size(), 2u);
  EXPECT_EQ(trace.spans()[0].name, "admission");
  EXPECT_EQ(trace.spans()[0].depth, 0);
  EXPECT_EQ(trace.spans()[1].name, "solve");
  EXPECT_EQ(trace.spans()[1].depth, 0);
  // The second span starts no earlier than the first.
  EXPECT_GE(trace.spans()[1].start_us, trace.spans()[0].start_us);
}

TEST(ScopedSpanTest, NestedSpansCarryDepth) {
  RequestTrace trace(1);
  {
    TraceScope scope(&trace);
    ScopedSpan outer("request");
    {
      ScopedSpan inner("solve");
      { ScopedSpan innermost("kernel"); }
    }
  }
  // Spans land in End() order (innermost first).
  ASSERT_EQ(trace.spans().size(), 3u);
  EXPECT_EQ(trace.spans()[0].name, "kernel");
  EXPECT_EQ(trace.spans()[0].depth, 2);
  EXPECT_EQ(trace.spans()[1].name, "solve");
  EXPECT_EQ(trace.spans()[1].depth, 1);
  EXPECT_EQ(trace.spans()[2].name, "request");
  EXPECT_EQ(trace.spans()[2].depth, 0);
}

TEST(ScopedSpanTest, EndIsIdempotent) {
  RequestTrace trace(1);
  LatencyHistogram h;
  {
    TraceScope scope(&trace);
    ScopedSpan span("write", &h);
    span.End();
    span.End();  // second call must be a no-op; destructor adds a third
  }
  EXPECT_EQ(trace.spans().size(), 1u);
  EXPECT_EQ(h.Summarize().count, 1u);
}

TEST(ScopedSpanTest, TraceCapturedAtConstructionNotEnd) {
  // A span built outside any scope stays detached even if a trace is
  // installed before it ends — spans never attach retroactively.
  RequestTrace trace(1);
  ScopedSpan span("early");
  {
    TraceScope scope(&trace);
    span.End();
  }
  EXPECT_TRUE(trace.spans().empty());
}

// ----------------------------------------------------------- format trace --

TEST(FormatTraceTest, RendersIdTotalAndIndentedSpans) {
  RequestTrace trace(0x1F3A);
  trace.AddSpan("decode", 0, 12, 0);
  trace.AddSpan("solve", 118, 3970, 1);
  const std::string text = FormatTrace(trace, 4211);
  EXPECT_NE(text.find("trace 0x1f3a total=4211us"), std::string::npos)
      << text;
  EXPECT_NE(text.find("\n  decode 12us @0us"), std::string::npos) << text;
  // Depth 1 gets one extra indent level.
  EXPECT_NE(text.find("\n    solve 3970us @118us"), std::string::npos)
      << text;
}

TEST(FormatTraceTest, CountersRenderAfterSpansAndAccumulateByName) {
  RequestTrace trace(0x2);
  trace.AddSpan("solve", 0, 100, 0);
  trace.AddCounter("smo_iterations", 40);
  trace.AddCounter("kernel_cache_hits", 9);
  trace.AddCounter("smo_iterations", 2);  // same name: summed, not appended
  ASSERT_EQ(trace.counters().size(), 2u);
  EXPECT_EQ(trace.counters()[0].value, 42);

  const std::string text = FormatTrace(trace, 100);
  EXPECT_NE(text.find("\n  smo_iterations=42"), std::string::npos) << text;
  EXPECT_NE(text.find("\n  kernel_cache_hits=9"), std::string::npos) << text;
  // Counters follow the span tree.
  EXPECT_LT(text.find("solve 100us"), text.find("smo_iterations=42"));
}

TEST(FormatTraceTest, SpanTreeRenderingMatchesDetachedVectors) {
  // FormatSpanTree (used by the flight recorder on copies that outlived
  // their trace) and FormatTrace must agree byte for byte.
  RequestTrace trace(0x77);
  trace.AddSpan("decode", 0, 12, 0);
  trace.AddCounter("index_rows_scanned", -3);
  EXPECT_EQ(FormatTrace(trace, 500),
            FormatSpanTree(0x77, 500, trace.spans(), trace.counters()));
}

// ------------------------------------------------------- slow request log --

TEST(SlowRequestLogTest, TriggersExactlyAtThreshold) {
  std::vector<std::string> lines;
  SlowRequestLog log(5, [&lines](const std::string& l) {
    lines.push_back(l);
  });
  RequestTrace trace(9);
  trace.AddSpan("solve", 0, 4999, 0);
  EXPECT_FALSE(log.MaybeLog(trace, 4999));  // one microsecond under
  EXPECT_TRUE(log.MaybeLog(trace, 5000));   // exactly at 5ms: logged
  EXPECT_TRUE(log.MaybeLog(trace, 5001));
  EXPECT_EQ(log.logged(), 2u);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("slow request (>=5ms)"), std::string::npos)
      << lines[0];
  EXPECT_NE(lines[0].find("trace 0x9 total=5000us"), std::string::npos)
      << lines[0];
  EXPECT_NE(lines[0].find("solve 4999us @0us"), std::string::npos)
      << lines[0];
}

TEST(SlowRequestLogTest, NonPositiveThresholdDisables) {
  int calls = 0;
  SlowRequestLog zero(0, [&calls](const std::string&) { ++calls; });
  SlowRequestLog negative(-3, [&calls](const std::string&) { ++calls; });
  RequestTrace trace(1);
  EXPECT_FALSE(zero.MaybeLog(trace, 1u << 30));
  EXPECT_FALSE(negative.MaybeLog(trace, 1u << 30));
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(zero.logged(), 0u);
}

TEST(SlowRequestLogTest, ConcurrentLoggingCountsEveryHit) {
  std::vector<std::string> lines;
  SlowRequestLog log(1, [&lines](const std::string& l) {
    lines.push_back(l);  // sink runs under the log's mutex
  });
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log] {
      RequestTrace trace(42);
      for (int i = 0; i < kIters; ++i) log.MaybeLog(trace, 1000);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(log.logged(), uint64_t{kThreads} * kIters);
  EXPECT_EQ(lines.size(), size_t{kThreads} * kIters);
}

TEST(SlowRequestLogTest, RecentIsABoundedRingOldestFirst) {
  SlowRequestLog log(1, [](const std::string&) {});  // swallow the sink
  EXPECT_TRUE(log.Recent().empty());

  RequestTrace trace(0xA);
  // Overfill the ring by three: entries 1..3 are evicted.
  const size_t total = SlowRequestLog::kRecentCapacity + 3;
  for (size_t i = 1; i <= total; ++i) {
    log.MaybeLog(trace, 1000 + i);  // distinct total_us tags each entry
  }
  const std::vector<std::string> recent = log.Recent();
  ASSERT_EQ(recent.size(), SlowRequestLog::kRecentCapacity);
  // Oldest survivor is entry 4 (total_us=1004); newest is the last logged.
  EXPECT_NE(recent.front().find("total=1004us"), std::string::npos)
      << recent.front();
  EXPECT_NE(recent.back().find("total=" + std::to_string(1000 + total) +
                               "us"),
            std::string::npos)
      << recent.back();
}

}  // namespace
}  // namespace cbir::obs
