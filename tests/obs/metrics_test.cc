#include "obs/metrics.h"

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cbir::obs {
namespace {

// ---------------------------------------------------------------- buckets --

TEST(LatencyHistogramTest, BucketIndexAndUpperBoundAgree) {
  // Every probed value must land in a bucket whose bounds contain it:
  // prev_upper <= us < upper. Probe bucket edges, edge+-1, and a spread of
  // values across the whole range.
  std::vector<uint64_t> probes = {0, 1, 2, 7, 8, 9, 100, 1000, 123456};
  for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
    const uint64_t upper = LatencyHistogram::BucketUpperBound(b);
    probes.push_back(upper - 1);
    probes.push_back(upper);
  }
  for (uint64_t us : probes) {
    const int bucket = LatencyHistogram::BucketIndex(us);
    ASSERT_GE(bucket, 0);
    ASSERT_LT(bucket, LatencyHistogram::kBuckets);
    if (us < LatencyHistogram::BucketUpperBound(LatencyHistogram::kBuckets -
                                                1)) {
      EXPECT_LT(us, LatencyHistogram::BucketUpperBound(bucket)) << us;
    } else {
      EXPECT_EQ(bucket, LatencyHistogram::kBuckets - 1) << us;
    }
    if (bucket > 0) {
      EXPECT_GE(us, LatencyHistogram::BucketUpperBound(bucket - 1)) << us;
    }
  }
}

TEST(LatencyHistogramTest, UpperBoundsStrictlyIncrease) {
  for (int b = 1; b < LatencyHistogram::kBuckets; ++b) {
    EXPECT_LT(LatencyHistogram::BucketUpperBound(b - 1),
              LatencyHistogram::BucketUpperBound(b))
        << "bucket " << b;
  }
}

TEST(LatencyHistogramTest, EmptySummaryIsAllZero) {
  LatencyHistogram h;
  const LatencySummary s = h.Summarize();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.saturated, 0u);
  EXPECT_EQ(s.p50_us, 0.0);
  EXPECT_EQ(s.max_us, 0.0);
}

TEST(LatencyHistogramTest, PercentilesOverEstimateByAtMostOneBucket) {
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) h.Record(100.0);
  h.Record(5000.0);
  const LatencySummary s = h.Summarize();
  EXPECT_EQ(s.count, 1001u);
  // p50/p95 sit in 100us's bucket: at least the value, within 12.5% above.
  EXPECT_GE(s.p50_us, 100.0);
  EXPECT_LE(s.p50_us, 100.0 * 1.125);
  EXPECT_GE(s.p95_us, 100.0);
  EXPECT_LE(s.p95_us, 100.0 * 1.125);
  EXPECT_GE(s.max_us, 5000.0);
  EXPECT_LE(s.max_us, 5000.0 * 1.125);
  EXPECT_NEAR(s.mean_us, (1000 * 100.0 + 5000.0) / 1001.0, 1.0);
}

TEST(LatencyHistogramTest, NegativeAndZeroClampToZeroBucket) {
  LatencyHistogram h;
  h.Record(-3.0);
  h.Record(0.0);
  const LatencySummary s = h.Summarize();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.saturated, 0u);
  EXPECT_EQ(s.max_us, 1.0);  // upper bound of bucket 0
}

TEST(LatencyHistogramTest, SaturationCountsClampedSamples) {
  LatencyHistogram h;
  const double top = static_cast<double>(
      LatencyHistogram::BucketUpperBound(LatencyHistogram::kBuckets - 1));
  h.Record(top);            // exactly at the bound: clamped
  h.Record(top * 4.0);      // far beyond: clamped
  h.Record(top - 2.0);      // inside the top bucket: not saturated
  const LatencySummary s = h.Summarize();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.saturated, 2u);
}

TEST(LatencyHistogramTest, ResetZeroesEverything) {
  LatencyHistogram h;
  h.Record(10.0);
  h.Record(1e12);  // saturates
  h.Reset();
  const LatencySummary s = h.Summarize();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.saturated, 0u);
}

// --------------------------------------------------------------- registry --

TEST(MetricsRegistryTest, GetReturnsStablePointerPerSeries) {
  MetricsRegistry r;
  Counter* a = r.GetCounter("requests_total");
  Counter* b = r.GetCounter("requests_total");
  EXPECT_EQ(a, b);
  // A label value makes a distinct series under the same name.
  Counter* labeled = r.GetCounter("requests_total", "stage", "solve");
  EXPECT_NE(a, labeled);
  EXPECT_NE(labeled, r.GetCounter("requests_total", "stage", "decode"));

  a->Increment();
  a->Increment(9);
  EXPECT_EQ(a->value(), 10u);
  EXPECT_EQ(labeled->value(), 0u);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry r;
  Gauge* g = r.GetGauge("resident_bytes");
  g->Set(100);
  g->Add(-250);
  EXPECT_EQ(g->value(), -150);
}

TEST(MetricsRegistryTest, SnapshotOrderedByNameThenLabel) {
  MetricsRegistry r;
  r.GetCounter("zeta_total")->Increment(1);
  r.GetCounter("alpha_total", "stage", "write")->Increment(2);
  r.GetCounter("alpha_total", "stage", "decode")->Increment(3);
  const MetricsSnapshot snap = r.Snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "alpha_total");
  EXPECT_EQ(snap.counters[0].label_value, "decode");
  EXPECT_EQ(snap.counters[0].value, 3u);
  EXPECT_EQ(snap.counters[1].label_value, "write");
  EXPECT_EQ(snap.counters[2].name, "zeta_total");
}

TEST(MetricsRegistryTest, OnGatherRunsBeforeSnapshot) {
  MetricsRegistry r;
  int gathers = 0;
  // The callback re-enters the registry through GetGauge — this must not
  // deadlock (callbacks run outside the registry lock).
  r.OnGather([&] {
    ++gathers;
    r.GetGauge("pulled")->Set(gathers);
  });
  MetricsSnapshot snap = r.Snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 1);
  snap = r.Snapshot();
  EXPECT_EQ(snap.gauges[0].value, 2);
}

TEST(MetricsRegistryTest, DefaultIsProcessWideSingleton) {
  EXPECT_EQ(&MetricsRegistry::Default(), &MetricsRegistry::Default());
}

// The TSan job runs this: 8 writer threads hammer counters, gauges, and a
// histogram while a reader snapshots concurrently. Any lock misuse or
// non-atomic access in the wait-free paths shows up as a race report; the
// final counts also check that no increment was lost.
TEST(MetricsRegistryTest, ConcurrentIncrementAndSnapshot) {
  MetricsRegistry r;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&r, t] {
      // Half the threads share one series; the rest register their own —
      // registration (locked) races with updates (wait-free) on purpose.
      Counter* shared = r.GetCounter("shared_total");
      Counter* own = r.GetCounter("own_total", "thread", std::to_string(t));
      Gauge* gauge = r.GetGauge("level");
      LatencyHistogram* h = r.GetHistogram("lat_us");
      for (int i = 0; i < kIters; ++i) {
        shared->Increment();
        own->Increment();
        gauge->Set(i);
        h->Record(static_cast<double>(i % 1000));
      }
    });
  }
  std::thread reader([&r] {
    for (int i = 0; i < 50; ++i) {
      const MetricsSnapshot snap = r.Snapshot();
      (void)snap;
    }
  });
  for (std::thread& w : writers) w.join();
  reader.join();

  const MetricsSnapshot snap = r.Snapshot();
  uint64_t shared = 0, own_sum = 0, hist_count = 0;
  for (const CounterSample& c : snap.counters) {
    if (c.name == "shared_total") shared = c.value;
    if (c.name == "own_total") own_sum += c.value;
  }
  for (const HistogramSample& h : snap.histograms) {
    if (h.name == "lat_us") hist_count = h.summary.count;
  }
  EXPECT_EQ(shared, uint64_t{kThreads} * kIters);
  EXPECT_EQ(own_sum, uint64_t{kThreads} * kIters);
  EXPECT_EQ(hist_count, uint64_t{kThreads} * kIters);
}

// ------------------------------------------------------------- exposition --

TEST(RenderExpositionTest, CountersGaugesAndHistogramLines) {
  MetricsRegistry r;
  r.GetCounter("cbir_net_requests_total")->Increment(42);
  r.GetCounter("cbir_request_errors_total", "kind", "decode")->Increment(3);
  r.GetGauge("cbir_serve_active_sessions")->Set(-7);
  LatencyHistogram* h = r.GetHistogram("cbir_net_request_us");
  for (int i = 0; i < 100; ++i) h->Record(64.0);

  const std::string text = r.RenderExposition();
  EXPECT_NE(text.find("cbir_net_requests_total 42\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("cbir_request_errors_total{kind=\"decode\"} 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("cbir_serve_active_sessions -7\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("cbir_net_request_us_count 100\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("cbir_net_request_us_saturated 0\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("cbir_net_request_us_sum "), std::string::npos)
      << text;
  for (const char* q : {"0.5", "0.95", "0.99"}) {
    EXPECT_NE(text.find("cbir_net_request_us{quantile=\"" + std::string(q) +
                        "\"} "),
              std::string::npos)
        << text;
  }
  // Non-empty, no leading space; the rendering opens with the first
  // metric's `# TYPE` comment.
  EXPECT_EQ(text.front(), '#');
  EXPECT_EQ(text.back(), '\n');
}

TEST(RenderExpositionTest, HistogramWithLabelCarriesQuantileAsSecondLabel) {
  MetricsRegistry r;
  r.GetHistogram("cbir_request_stage_us", "stage", "solve")->Record(10.0);
  const std::string text = r.RenderExposition();
  EXPECT_NE(text.find("cbir_request_stage_us_count{stage=\"solve\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(
      text.find("cbir_request_stage_us{stage=\"solve\",quantile=\"0.5\"} "),
      std::string::npos)
      << text;
}

}  // namespace
}  // namespace cbir::obs
