#include "obs/exposition.h"

#include <atomic>
#include <string>

#include <gtest/gtest.h>

#include "net/socket.h"
#include "obs/metrics.h"

namespace cbir::obs {
namespace {

/// One scrape: connect, send nothing (the server replies on accept, like
/// `nc host port < /dev/null`), read to EOF.
std::string Scrape(int port) {
  Result<net::Socket> conn = net::Socket::ConnectTcp("127.0.0.1", port);
  EXPECT_TRUE(conn.ok()) << conn.status();
  if (!conn.ok()) return "";
  std::string out;
  for (;;) {
    char byte = 0;
    bool eof = false;
    const Status s = conn->ReadFully(&byte, 1, &eof);
    EXPECT_TRUE(s.ok()) << s;
    if (!s.ok() || eof) break;
    out.push_back(byte);
  }
  return out;
}

TEST(ExpositionServerTest, ServesRegistryOnEveryConnection) {
  MetricsRegistry registry;
  registry.GetCounter("cbir_net_requests_total")->Increment(5);
  registry.GetHistogram("cbir_net_request_us")->Record(100.0);

  ExpositionServer server(&registry, "127.0.0.1", 0);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  const std::string first = Scrape(server.port());
  // HTTP/1.0 framing so curl works, plaintext exposition body.
  EXPECT_EQ(first.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << first;
  EXPECT_NE(first.find("Content-Type: text/plain"), std::string::npos)
      << first;
  EXPECT_NE(first.find("cbir_net_requests_total 5\n"), std::string::npos)
      << first;
  EXPECT_NE(first.find("cbir_net_request_us_count 1\n"), std::string::npos)
      << first;

  // The next scrape sees updated values — the body is rendered per request,
  // not cached at Start().
  registry.GetCounter("cbir_net_requests_total")->Increment(2);
  const std::string second = Scrape(server.port());
  EXPECT_NE(second.find("cbir_net_requests_total 7\n"), std::string::npos)
      << second;
  EXPECT_EQ(server.scrapes(), 2u);

  server.Stop();
  server.Stop();  // idempotent
}

TEST(ExpositionServerTest, StartFailsOnUnbindableAddress) {
  MetricsRegistry registry;
  ExpositionServer server(&registry, "203.0.113.1", 0);  // TEST-NET: no if
  EXPECT_FALSE(server.Start().ok());
  server.Stop();  // safe after a failed start
}

/// One HTTP-shaped request: send a request line + blank line, read to EOF.
std::string Get(int port, const std::string& path) {
  Result<net::Socket> conn = net::Socket::ConnectTcp("127.0.0.1", port);
  EXPECT_TRUE(conn.ok()) << conn.status();
  if (!conn.ok()) return "";
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  EXPECT_TRUE(conn->WriteAll(request.data(), request.size()).ok());
  std::string out;
  for (;;) {
    char byte = 0;
    bool eof = false;
    const Status s = conn->ReadFully(&byte, 1, &eof);
    EXPECT_TRUE(s.ok()) << s;
    if (!s.ok() || eof) break;
    out.push_back(byte);
  }
  return out;
}

TEST(ExpositionServerTest, RoutesPathsToHandlersAnd404sTheRest) {
  MetricsRegistry registry;
  registry.GetCounter("cbir_net_requests_total")->Increment(3);
  ExpositionServer server(&registry, "127.0.0.1", 0);
  int statusz_calls = 0;
  server.SetHandler("/statusz", [&statusz_calls] {
    ++statusz_calls;
    return std::string("slo: ok\nwindow 60s: windowed p99=120us\n");
  });
  ASSERT_TRUE(server.Start().ok());

  // An explicit GET /metrics serves the exposition, same as the default.
  const std::string metrics = Get(server.port(), "/metrics");
  EXPECT_EQ(metrics.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << metrics;
  EXPECT_NE(metrics.find("cbir_net_requests_total 3\n"), std::string::npos)
      << metrics;
  // The exposition endpoint advertises the Prometheus text format version.
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos)
      << metrics;

  const std::string statusz = Get(server.port(), "/statusz");
  EXPECT_EQ(statusz.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << statusz;
  EXPECT_NE(statusz.find("windowed p99=120us"), std::string::npos) << statusz;
  EXPECT_EQ(statusz_calls, 1);

  // Query strings are stripped before routing.
  const std::string with_query = Get(server.port(), "/statusz?verbose=1");
  EXPECT_NE(with_query.find("slo: ok"), std::string::npos) << with_query;

  const std::string missing = Get(server.port(), "/nope");
  EXPECT_EQ(missing.rfind("HTTP/1.0 404 Not Found\r\n", 0), 0u) << missing;
  EXPECT_NE(missing.find("/nope"), std::string::npos) << missing;

  // Every connection counts as a scrape, whatever the path.
  EXPECT_EQ(server.scrapes(), 4u);
  server.Stop();
}

TEST(ExpositionServerTest, ExpositionCarriesHelpAndTypeComments) {
  MetricsRegistry registry;
  registry.GetCounter("cbir_net_requests_total")->Increment();
  registry.SetHelp("cbir_net_requests_total",
                   "Requests fully read off a connection.");
  registry.GetGauge("cbir_process_rss_bytes")->Set(123);
  registry.GetHistogram("cbir_net_request_us")->Record(50.0);
  ExpositionServer server(&registry, "127.0.0.1", 0);
  ASSERT_TRUE(server.Start().ok());

  const std::string body = Get(server.port(), "/metrics");
  EXPECT_NE(body.find("# HELP cbir_net_requests_total Requests fully read "
                      "off a connection.\n# TYPE cbir_net_requests_total "
                      "counter\n"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("# TYPE cbir_process_rss_bytes gauge\n"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("# TYPE cbir_net_request_us summary\n"),
            std::string::npos)
      << body;
  server.Stop();
}

TEST(ExpositionServerTest, StatusHandlerDrivesTheHttpCode) {
  // The /healthz contract: the handler picks 200 or 503 per call, so a load
  // balancer polling the code sees serving -> draining flips immediately.
  MetricsRegistry registry;
  ExpositionServer server(&registry, "127.0.0.1", 0);
  std::atomic<bool> draining{false};
  server.SetStatusHandler("/healthz", [&draining] {
    ExpositionServer::StatusResult result;
    if (draining.load()) {
      result.code = 503;
      result.body = "draining\n";
    } else {
      result.body = "ok\n";
    }
    return result;
  });
  // A StatusHandler outranks a plain Handler on the same path.
  server.SetHandler("/healthz", [] { return std::string("shadowed\n"); });
  ASSERT_TRUE(server.Start().ok());

  const std::string serving = Get(server.port(), "/healthz");
  EXPECT_EQ(serving.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << serving;
  EXPECT_NE(serving.find("ok\n"), std::string::npos) << serving;
  EXPECT_EQ(serving.find("shadowed"), std::string::npos) << serving;

  draining.store(true);
  const std::string drained = Get(server.port(), "/healthz");
  EXPECT_EQ(drained.rfind("HTTP/1.0 503 Service Unavailable\r\n", 0), 0u)
      << drained;
  EXPECT_NE(drained.find("draining\n"), std::string::npos) << drained;
  server.Stop();
}

}  // namespace
}  // namespace cbir::obs
