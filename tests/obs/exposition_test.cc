#include "obs/exposition.h"

#include <string>

#include <gtest/gtest.h>

#include "net/socket.h"
#include "obs/metrics.h"

namespace cbir::obs {
namespace {

/// One scrape: connect, send nothing (the server replies on accept, like
/// `nc host port < /dev/null`), read to EOF.
std::string Scrape(int port) {
  Result<net::Socket> conn = net::Socket::ConnectTcp("127.0.0.1", port);
  EXPECT_TRUE(conn.ok()) << conn.status();
  if (!conn.ok()) return "";
  std::string out;
  for (;;) {
    char byte = 0;
    bool eof = false;
    const Status s = conn->ReadFully(&byte, 1, &eof);
    EXPECT_TRUE(s.ok()) << s;
    if (!s.ok() || eof) break;
    out.push_back(byte);
  }
  return out;
}

TEST(ExpositionServerTest, ServesRegistryOnEveryConnection) {
  MetricsRegistry registry;
  registry.GetCounter("cbir_net_requests_total")->Increment(5);
  registry.GetHistogram("cbir_net_request_us")->Record(100.0);

  ExpositionServer server(&registry, "127.0.0.1", 0);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  const std::string first = Scrape(server.port());
  // HTTP/1.0 framing so curl works, plaintext exposition body.
  EXPECT_EQ(first.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << first;
  EXPECT_NE(first.find("Content-Type: text/plain"), std::string::npos)
      << first;
  EXPECT_NE(first.find("cbir_net_requests_total 5\n"), std::string::npos)
      << first;
  EXPECT_NE(first.find("cbir_net_request_us_count 1\n"), std::string::npos)
      << first;

  // The next scrape sees updated values — the body is rendered per request,
  // not cached at Start().
  registry.GetCounter("cbir_net_requests_total")->Increment(2);
  const std::string second = Scrape(server.port());
  EXPECT_NE(second.find("cbir_net_requests_total 7\n"), std::string::npos)
      << second;
  EXPECT_EQ(server.scrapes(), 2u);

  server.Stop();
  server.Stop();  // idempotent
}

TEST(ExpositionServerTest, StartFailsOnUnbindableAddress) {
  MetricsRegistry registry;
  ExpositionServer server(&registry, "203.0.113.1", 0);  // TEST-NET: no if
  EXPECT_FALSE(server.Start().ok());
  server.Stop();  // safe after a failed start
}

}  // namespace
}  // namespace cbir::obs
