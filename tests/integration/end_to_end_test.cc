// End-to-end integration test: builds a mid-size synthetic corpus, collects
// simulated user logs, runs the paper's full evaluation protocol across all
// four schemes and asserts the *shape* of the paper's headline result:
//
//   Euclidean < RF-SVM <= LRF-2SVMs <= LRF-CSVM   (at P@20 and MAP)
//
// Tolerances are loose: this guards the qualitative ordering, not the exact
// values (those are the benchmarks' job).
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/scheme_factory.h"
#include "logdb/simulated_user.h"

namespace cbir::core {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    retrieval::DatabaseOptions options;
    options.corpus.num_categories = 5;
    options.corpus.images_per_category = 40;
    options.corpus.width = 64;
    options.corpus.height = 64;
    options.corpus.seed = 2024;
    db_ = new retrieval::ImageDatabase(
        retrieval::ImageDatabase::Build(options));

    logdb::LogCollectionOptions log_options;
    log_options.num_sessions = 60;
    log_options.session_size = 15;
    log_options.user.noise_rate = 0.10;
    log_options.seed = 31;
    const logdb::LogStore store =
        logdb::CollectLogs(db_->features(), db_->categories(), log_options);
    log_features_ = new la::Matrix(
        store.BuildMatrix(db_->num_images()).ToDenseMatrix());

    const SchemeOptions scheme_options =
        MakeDefaultSchemeOptions(*db_, log_features_);
    ExperimentOptions exp_options;
    exp_options.num_queries = 30;
    exp_options.num_labeled = 15;
    exp_options.scopes = {20, 40, 60};
    exp_options.seed = 77;
    result_ = new ExperimentResult(
        RunExperiment(*db_, log_features_, MakePaperSchemes(scheme_options),
                      exp_options));
  }

  static void TearDownTestSuite() {
    delete result_;
    delete log_features_;
    delete db_;
  }

  const SchemeResult& Scheme(const std::string& name) {
    for (const SchemeResult& s : result_->schemes) {
      if (s.name == name) return s;
    }
    ADD_FAILURE() << "scheme " << name << " missing";
    static SchemeResult empty;
    return empty;
  }

  static retrieval::ImageDatabase* db_;
  static la::Matrix* log_features_;
  static ExperimentResult* result_;
};

retrieval::ImageDatabase* EndToEndTest::db_ = nullptr;
la::Matrix* EndToEndTest::log_features_ = nullptr;
ExperimentResult* EndToEndTest::result_ = nullptr;

TEST_F(EndToEndTest, AllSchemesEvaluated) {
  ASSERT_EQ(result_->schemes.size(), 4u);
  EXPECT_EQ(result_->num_queries, 30);
}

TEST_F(EndToEndTest, FeedbackBeatsEuclidean) {
  EXPECT_GT(Scheme("RF-SVM").map, Scheme("Euclidean").map);
}

TEST_F(EndToEndTest, LogSchemesBeatRegularFeedback) {
  // The paper's central claim: integrating the feedback log helps, clearly.
  EXPECT_GT(Scheme("LRF-2SVMs").map, Scheme("RF-SVM").map + 0.02);
  EXPECT_GT(Scheme("LRF-CSVM").map, Scheme("RF-SVM").map + 0.05);
}

TEST_F(EndToEndTest, CoupledSvmBeatsTwoSvms) {
  // The paper's headline comparison: the coupled SVM must beat the naive
  // combination of two SVMs, both at the top of the ranking and on MAP.
  EXPECT_GT(Scheme("LRF-CSVM").map, Scheme("LRF-2SVMs").map + 0.02);
  EXPECT_GT(Scheme("LRF-CSVM").precision[0],
            Scheme("LRF-2SVMs").precision[0]);
}

TEST_F(EndToEndTest, PrecisionDecaysWithScope) {
  // Precision@N is non-increasing in N for reasonable retrieval (each
  // category has 40 relevant images; scopes are 20/40/60).
  for (const SchemeResult& s : result_->schemes) {
    EXPECT_GE(s.precision[0] + 0.02, s.precision[1]) << s.name;
    EXPECT_GE(s.precision[1] + 0.02, s.precision[2]) << s.name;
  }
}

TEST_F(EndToEndTest, EuclideanPrecisionAboveChance) {
  // 5 categories: random precision ~0.2. Features must carry real signal.
  EXPECT_GT(Scheme("Euclidean").precision[0], 0.3);
}

TEST_F(EndToEndTest, PaperTableRendersAllRows) {
  const std::string table = FormatPaperTable(*result_);
  EXPECT_NE(table.find("20"), std::string::npos);
  EXPECT_NE(table.find("MAP"), std::string::npos);
}

}  // namespace
}  // namespace cbir::core
