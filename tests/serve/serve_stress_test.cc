// Multi-threaded stress tests for the serving subsystem. These are the
// binaries the ThreadSanitizer CI job runs: the assertions matter less than
// the interleavings — sessions started / fed / ended / evicted from many
// threads, first-round cache hit+invalidate races, and concurrent log-store
// appends.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "core/feedback_scheme.h"
#include "logdb/simulated_user.h"
#include "serve/retrieval_service.h"
#include "util/rng.h"

namespace cbir::serve {
namespace {

constexpr int kThreads = 8;

// Feature-injected corpus: big enough for contention, no rendering cost.
retrieval::ImageDatabase StressCorpus(int rows) {
  constexpr size_t kDims = 12;
  Rng rng(99);
  const int categories = 8;
  la::Matrix features(static_cast<size_t>(rows), kDims);
  std::vector<int> labels(static_cast<size_t>(rows));
  for (size_t r = 0; r < features.rows(); ++r) {
    labels[r] = static_cast<int>(r) % categories;
    for (size_t c = 0; c < kDims; ++c) {
      features.At(r, c) = rng.Gaussian() + (labels[r] == static_cast<int>(c)
                                                ? 2.0
                                                : 0.0);
    }
  }
  return retrieval::ImageDatabase::FromFeatures(std::move(features),
                                                std::move(labels), categories);
}

TEST(ServeStressTest, ConcurrentSessionsFullLifecycle) {
  retrieval::ImageDatabase db = StressCorpus(2000);
  retrieval::IndexOptions index_options;
  index_options.mode = retrieval::IndexMode::kSignature;
  db.BuildIndex(index_options);

  logdb::LogStore store;
  ServiceOptions options;
  options.scheme = "RF-SVM";
  options.candidate_depth = 50;
  options.sessions.max_sessions = 16;  // force capacity evictions under load
  options.cache.capacity = 32;
  auto service_or = RetrievalService::Create(
      &db, nullptr, &store, core::MakeDefaultSchemeOptions(db, nullptr),
      options);
  ASSERT_TRUE(service_or.ok());
  RetrievalService& service = *service_or.value();
  logdb::SimulatedUser user(db.categories(), logdb::UserModel{0.1});

  constexpr int kSessionsPerThread = 12;
  std::atomic<int> hard_failures{0};
  std::atomic<long> rounds_recorded{0};
  auto worker = [&](int t) {
    for (int s = 0; s < kSessionsPerThread; ++s) {
      Rng rng(static_cast<uint64_t>(t) * 7919 + static_cast<uint64_t>(s));
      const int query_id = static_cast<int>(
          rng.UniformInt(static_cast<uint64_t>(db.num_images())));
      auto sid = service.StartSession(query_id);
      if (!sid.ok()) {
        ++hard_failures;
        continue;
      }
      auto ranking = service.Query(sid.value(), 50);
      // NotFound is legal here: tiny capacity means another thread's
      // StartSession may have evicted us already.
      if (!ranking.ok()) continue;
      std::unordered_set<int> judged{query_id};
      const int category = db.category(query_id);
      for (int round = 0; round < 2; ++round) {
        std::vector<logdb::LogEntry> entries;
        for (int id : ranking.value()) {
          if (static_cast<int>(entries.size()) >= 6) break;
          if (!judged.insert(id).second) continue;
          entries.push_back(
              logdb::LogEntry{id, user.Judge(id, category, &rng)});
        }
        auto next = service.Feedback(sid.value(), entries, 50);
        if (!next.ok()) break;
        ranking = std::move(next);
        rounds_recorded.fetch_add(1);
      }
      (void)service.EndSession(sid.value());
    }
  };
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) pool.emplace_back(worker, t);
  for (std::thread& t : pool) t.join();

  EXPECT_EQ(hard_failures.load(), 0);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.sessions_started,
            static_cast<uint64_t>(kThreads * kSessionsPerThread));
  // Everything started was either ended or evicted; nothing leaked.
  EXPECT_EQ(stats.sessions_started,
            stats.sessions_ended + stats.sessions_evicted_capacity +
                stats.sessions_evicted_ttl + stats.active_sessions);
  // Every round that completed on a session that was ended or evicted is in
  // the log store; rounds on sessions evicted mid-flight may be dropped, so
  // the store can only undercount.
  EXPECT_LE(store.num_sessions(), rounds_recorded.load());
  EXPECT_GT(store.num_sessions(), 0);
}

TEST(ServeStressTest, CacheHitInvalidateRaces) {
  retrieval::ImageDatabase db = StressCorpus(1000);
  retrieval::IndexOptions index_options;
  index_options.mode = retrieval::IndexMode::kSignature;
  db.BuildIndex(index_options);

  ServiceOptions options;
  options.scheme = "Euclidean";
  options.candidate_depth = 40;
  options.cache.capacity = 64;   // smaller than the query pool: evictions
  options.cache.num_shards = 4;
  auto service_or = RetrievalService::Create(
      &db, nullptr, nullptr, core::MakeDefaultSchemeOptions(db, nullptr),
      options);
  ASSERT_TRUE(service_or.ok());
  RetrievalService& service = *service_or.value();

  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  auto reader = [&](int t) {
    Rng rng(static_cast<uint64_t>(t) + 1);
    while (!stop.load(std::memory_order_relaxed)) {
      const int query_id = static_cast<int>(rng.UniformInt(uint64_t{128}));
      auto sid = service.StartSession(query_id);
      if (!sid.ok()) continue;
      auto ranking = service.Query(sid.value(), 40);
      if (ranking.ok()) {
        // Cached or freshly computed, the ranking must be THE ranking:
        // the underlying data never changes in this test.
        std::vector<int> expected = db.TopK(db.feature(query_id), 40);
        expected.erase(
            std::remove(expected.begin(), expected.end(), query_id),
            expected.end());
        expected.resize(std::min(expected.size(), ranking->size()));
        if (ranking.value() != expected) ++mismatches;
      }
      (void)service.EndSession(sid.value());
    }
  };
  auto invalidator = [&] {
    while (!stop.load(std::memory_order_relaxed)) {
      service.InvalidateCache();
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  };
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads - 1; ++t) pool.emplace_back(reader, t);
  pool.emplace_back(invalidator);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  for (std::thread& t : pool) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  const ServiceStats stats = service.stats();
  EXPECT_GT(stats.cache_invalidations, 0u);
  EXPECT_GT(stats.cache_hits + stats.cache_misses, 0u);
}

TEST(ServeStressTest, TtlEvictionRacesRequests) {
  retrieval::ImageDatabase db = StressCorpus(500);
  ServiceOptions options;
  options.scheme = "Euclidean";
  options.candidate_depth = 0;  // exhaustive: also covers the no-index path
  options.sessions.ttl_seconds = 0.002;
  auto service_or = RetrievalService::Create(
      &db, nullptr, nullptr, core::MakeDefaultSchemeOptions(db, nullptr),
      options);
  ASSERT_TRUE(service_or.ok());
  RetrievalService& service = *service_or.value();

  std::atomic<bool> stop{false};
  auto worker = [&](int t) {
    Rng rng(static_cast<uint64_t>(t) + 41);
    while (!stop.load(std::memory_order_relaxed)) {
      auto sid = service.StartSession(static_cast<int>(
          rng.UniformInt(static_cast<uint64_t>(db.num_images()))));
      if (!sid.ok()) continue;
      (void)service.Query(sid.value());
      if (rng.Bernoulli(0.3)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
      }
      (void)service.Feedback(sid.value(), {});
      (void)service.EndSession(sid.value());
    }
  };
  auto sweeper = [&] {
    while (!stop.load(std::memory_order_relaxed)) {
      service.EvictExpiredSessions();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads - 1; ++t) pool.emplace_back(worker, t);
  pool.emplace_back(sweeper);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  for (std::thread& t : pool) t.join();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.sessions_started,
            stats.sessions_ended + stats.sessions_evicted_capacity +
                stats.sessions_evicted_ttl + stats.active_sessions);
}

}  // namespace
}  // namespace cbir::serve
