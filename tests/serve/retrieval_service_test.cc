#include "serve/retrieval_service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "core/feedback_loop.h"
#include "core/scheme_factory.h"
#include "logdb/simulated_user.h"
#include "retrieval/evaluator.h"

namespace cbir::serve {
namespace {

retrieval::DatabaseOptions SmallCorpus() {
  retrieval::DatabaseOptions options;
  options.corpus.num_categories = 5;
  options.corpus.images_per_category = 24;
  options.corpus.width = 48;
  options.corpus.height = 48;
  options.corpus.seed = 77;
  return options;
}

/// Shared fixture state: one rendered corpus + log matrix, reused by every
/// test (building it is the expensive part).
class RetrievalServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new retrieval::ImageDatabase(
        retrieval::ImageDatabase::Build(SmallCorpus()));
    logdb::LogCollectionOptions log_options;
    log_options.num_sessions = 40;
    log_options.session_size = 12;
    log_options.seed = 5;
    logdb::LogStore store =
        logdb::CollectLogs(db_->features(), db_->categories(), log_options);
    log_features_ =
        new la::Matrix(store.BuildMatrix(db_->num_images()).ToDenseMatrix());
  }
  static void TearDownTestSuite() {
    delete log_features_;
    log_features_ = nullptr;
    delete db_;
    db_ = nullptr;
  }

  static core::SchemeOptions SchemeOpts() {
    return core::MakeDefaultSchemeOptions(*db_, log_features_);
  }

  static std::unique_ptr<RetrievalService> MakeService(
      logdb::LogStore* store, ServiceOptions options) {
    auto service = RetrievalService::Create(db_, log_features_, store,
                                            SchemeOpts(), options);
    EXPECT_TRUE(service.ok()) << service.status();
    return std::move(service).value();
  }

  static retrieval::ImageDatabase* db_;
  static la::Matrix* log_features_;
};

retrieval::ImageDatabase* RetrievalServiceTest::db_ = nullptr;
la::Matrix* RetrievalServiceTest::log_features_ = nullptr;

TEST_F(RetrievalServiceTest, StartQueryEndBasics) {
  ServiceOptions options;
  options.scheme = "Euclidean";
  auto service = MakeService(nullptr, options);

  auto sid = service->StartSession(3);
  ASSERT_TRUE(sid.ok()) << sid.status();
  auto top = service->Query(sid.value(), 10);
  ASSERT_TRUE(top.ok()) << top.status();
  EXPECT_EQ(top->size(), 10u);
  // Matches the database ranking with the query excluded.
  std::vector<int> expected = db_->TopK(db_->feature(3), 11);
  expected.erase(std::remove(expected.begin(), expected.end(), 3),
                 expected.end());
  expected.resize(10);
  EXPECT_EQ(top.value(), expected);

  EXPECT_TRUE(service->EndSession(sid.value()).ok());
  // Every further request on the ended session fails NotFound.
  EXPECT_EQ(service->Query(sid.value()).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service->EndSession(sid.value()).code(), StatusCode::kNotFound);
}

TEST_F(RetrievalServiceTest, RejectsBadInputs) {
  ServiceOptions options;
  options.scheme = "Euclidean";
  auto service = MakeService(nullptr, options);
  EXPECT_EQ(service->StartSession(-1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service->StartSession(db_->num_images()).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service->Query(99999).status().code(), StatusCode::kNotFound);

  auto sid = service->StartSession(0);
  ASSERT_TRUE(sid.ok());
  EXPECT_EQ(service
                ->Feedback(sid.value(),
                           {logdb::LogEntry{1, 3}})  // judgment not +-1
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service
                ->Feedback(sid.value(), {logdb::LogEntry{db_->num_images(), 1}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  ServiceOptions bad;
  bad.scheme = "NoSuchScheme";
  EXPECT_FALSE(
      RetrievalService::Create(db_, log_features_, nullptr, SchemeOpts(), bad)
          .ok());
}

// The acceptance-critical property: a single-threaded service session is
// rank-identical to core::RunFeedbackSession — same first-round ranking,
// same narrowed scan space, same warm-started re-rankings.
TEST_F(RetrievalServiceTest, MatchesRunFeedbackSessionExactly) {
  for (const char* scheme_name : {"RF-SVM", "LRF-CSVM"}) {
    SCOPED_TRACE(scheme_name);
    for (const bool signature_index : {false, true}) {
      SCOPED_TRACE(signature_index ? "signature" : "no index");
      retrieval::ImageDatabase db(*db_);  // copy: private index config
      if (signature_index) {
        retrieval::IndexOptions index_options;
        index_options.mode = retrieval::IndexMode::kSignature;
        db.BuildIndex(index_options);
      }

      core::FeedbackLoopOptions loop;
      loop.rounds = 3;
      loop.judgments_per_round = 8;
      loop.scopes = {10};
      loop.seed = 11;
      const int query_id = 17;
      const int depth =
          10 + loop.rounds * loop.judgments_per_round + 1;  // loop's auto

      auto scheme =
          core::MakeScheme(scheme_name, core::MakeDefaultSchemeOptions(
                                            db, log_features_));
      ASSERT_TRUE(scheme.ok());
      auto reference =
          core::RunFeedbackSession(db, log_features_, *scheme.value(),
                                   query_id, loop);
      ASSERT_TRUE(reference.ok()) << reference.status();

      ServiceOptions options;
      options.scheme = scheme_name;
      options.candidate_depth = depth;
      auto service = RetrievalService::Create(
          &db, log_features_, nullptr,
          core::MakeDefaultSchemeOptions(db, log_features_), options);
      ASSERT_TRUE(service.ok());

      // Drive the service with the same simulated user stream the loop
      // used, and check the per-round precision trace matches exactly.
      logdb::SimulatedUser user(db.categories(),
                                logdb::UserModel{loop.judgment_noise});
      Rng rng(loop.seed);
      const int query_category = db.category(query_id);
      auto sid = service.value()->StartSession(query_id);
      ASSERT_TRUE(sid.ok());
      auto ranking = service.value()->Query(sid.value(), depth);
      ASSERT_TRUE(ranking.ok());
      EXPECT_EQ(retrieval::PrecisionAtScopes(ranking.value(), db.categories(),
                                             query_category, loop.scopes),
                reference->precision[0]);

      std::unordered_set<int> judged{query_id};
      for (int round = 1; round <= loop.rounds; ++round) {
        SCOPED_TRACE(round);
        std::vector<logdb::LogEntry> entries;
        for (int id : ranking.value()) {
          if (static_cast<int>(entries.size()) >= loop.judgments_per_round) {
            break;
          }
          if (!judged.insert(id).second) continue;
          entries.push_back(
              logdb::LogEntry{id, user.Judge(id, query_category, &rng)});
        }
        ranking = service.value()->Feedback(sid.value(), entries, depth);
        ASSERT_TRUE(ranking.ok()) << ranking.status();
        EXPECT_EQ(
            retrieval::PrecisionAtScopes(ranking.value(), db.categories(),
                                         query_category, loop.scopes),
            reference->precision[static_cast<size_t>(round)]);
      }
    }
  }
}

TEST_F(RetrievalServiceTest, FeedbackImprovesAndRecordsLog) {
  logdb::LogStore store;
  ServiceOptions options;
  options.scheme = "RF-SVM";
  options.candidate_depth = 60;
  auto service = MakeService(&store, options);

  const int query_id = 2;
  const int query_category = db_->category(query_id);
  auto sid = service->StartSession(query_id);
  ASSERT_TRUE(sid.ok());
  auto ranking = service->Query(sid.value(), 60);
  ASSERT_TRUE(ranking.ok());

  // Two noise-free feedback rounds.
  logdb::SimulatedUser user(db_->categories(), logdb::UserModel{0.0});
  Rng rng(3);
  std::unordered_set<int> judged{query_id};
  for (int round = 0; round < 2; ++round) {
    std::vector<logdb::LogEntry> entries;
    for (int id : ranking.value()) {
      if (static_cast<int>(entries.size()) >= 15) break;
      if (!judged.insert(id).second) continue;
      entries.push_back(
          logdb::LogEntry{id, user.Judge(id, query_category, &rng)});
    }
    ranking = service->Feedback(sid.value(), entries, 60);
    ASSERT_TRUE(ranking.ok()) << ranking.status();
  }

  // Nothing lands in the log until the session ends.
  EXPECT_EQ(store.num_sessions(), 0);
  ASSERT_TRUE(service->EndSession(sid.value()).ok());
  EXPECT_EQ(store.num_sessions(), 2);  // one LogSession per feedback round
  EXPECT_EQ(store.sessions()[0].query_image_id, query_id);
  EXPECT_EQ(store.sessions()[0].entries.size(), 15u);

  const ServiceStats stats = service->stats();
  EXPECT_EQ(stats.queries, 1u);
  EXPECT_EQ(stats.feedbacks, 2u);
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.sessions_started, 1u);
  EXPECT_EQ(stats.sessions_ended, 1u);
  EXPECT_EQ(stats.log_sessions_appended, 2u);
  EXPECT_EQ(stats.latency.count, 3u);
  EXPECT_GT(stats.latency.p95_us, 0.0);
}

TEST_F(RetrievalServiceTest, DuplicateAndSelfJudgmentsAreIgnored) {
  ServiceOptions options;
  options.scheme = "RF-SVM";
  options.candidate_depth = 40;
  logdb::LogStore store;
  auto service = MakeService(&store, options);

  auto sid = service->StartSession(4);
  ASSERT_TRUE(sid.ok());
  auto first = service->Query(sid.value(), 40);
  ASSERT_TRUE(first.ok());
  const int other = first.value()[0];
  // The query itself and a repeated id are dropped; the duplicate round
  // re-judging `other` contributes nothing.
  auto r1 = service->Feedback(
      sid.value(), {logdb::LogEntry{4, 1}, logdb::LogEntry{other, 1},
                    logdb::LogEntry{other, -1}, logdb::LogEntry{first.value()[1], -1}});
  ASSERT_TRUE(r1.ok()) << r1.status();
  auto r2 = service->Feedback(sid.value(), {logdb::LogEntry{other, -1}});
  ASSERT_TRUE(r2.ok()) << r2.status();
  ASSERT_TRUE(service->EndSession(sid.value()).ok());
  // Round 1 kept two judgments; round 2 kept none (all duplicates).
  ASSERT_EQ(store.num_sessions(), 1);
  EXPECT_EQ(store.sessions()[0].entries.size(), 2u);
}

TEST_F(RetrievalServiceTest, QueryCacheHitsAcrossSessions) {
  // First-round caching only engages for bounded-depth serving over an
  // index (full-corpus rankings are deliberately not cached).
  retrieval::ImageDatabase db(*db_);
  db.BuildIndex(retrieval::IndexOptions{});  // exact
  ServiceOptions options;
  options.scheme = "Euclidean";
  options.candidate_depth = 30;
  auto service_or = RetrievalService::Create(
      &db, log_features_, nullptr,
      core::MakeDefaultSchemeOptions(db, log_features_), options);
  ASSERT_TRUE(service_or.ok());
  auto& service = service_or.value();

  auto first = service->StartSession(6);
  ASSERT_TRUE(first.ok());
  auto r1 = service->Query(first.value(), 30);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(service->stats().cache_misses, 1u);

  auto second = service->StartSession(6);
  ASSERT_TRUE(second.ok());
  auto r2 = service->Query(second.value(), 30);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value(), r2.value());
  EXPECT_EQ(service->stats().cache_hits, 1u);
  EXPECT_EQ(service->stats().cache_misses, 1u);

  // Invalidate: the same query misses once, then hits again.
  service->InvalidateCache();
  auto third = service->StartSession(6);
  ASSERT_TRUE(third.ok());
  ASSERT_TRUE(service->Query(third.value(), 30).ok());
  EXPECT_EQ(service->stats().cache_misses, 2u);
  EXPECT_EQ(service->stats().cache_invalidations, 1u);
}

TEST_F(RetrievalServiceTest, CapacityEvictionFlushesToLog) {
  logdb::LogStore store;
  ServiceOptions options;
  options.scheme = "Euclidean";
  options.candidate_depth = 30;
  options.sessions.max_sessions = 2;
  auto service = MakeService(&store, options);

  auto s1 = service->StartSession(1);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(service->Query(s1.value()).ok());
  ASSERT_TRUE(
      service->Feedback(s1.value(), {logdb::LogEntry{2, 1}}).ok());
  auto s2 = service->StartSession(2);
  ASSERT_TRUE(s2.ok());
  // Session 3 exceeds capacity: s1 (LRU) is evicted and its round flushed.
  auto s3 = service->StartSession(3);
  ASSERT_TRUE(s3.ok());
  EXPECT_EQ(service->stats().sessions_evicted_capacity, 1u);
  EXPECT_EQ(service->stats().active_sessions, 2u);
  EXPECT_EQ(store.num_sessions(), 1);
  EXPECT_EQ(service->Query(s1.value()).status().code(), StatusCode::kNotFound);
  // The survivors still work.
  EXPECT_TRUE(service->Query(s2.value()).ok());
  EXPECT_TRUE(service->Query(s3.value()).ok());
}

TEST_F(RetrievalServiceTest, TtlEvictionExpiresIdleSessions) {
  ServiceOptions options;
  options.scheme = "Euclidean";
  options.sessions.ttl_seconds = 0.02;
  auto service = MakeService(nullptr, options);

  auto sid = service->StartSession(1);
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(service->Query(sid.value()).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_EQ(service->EvictExpiredSessions(), 1u);
  EXPECT_EQ(service->Query(sid.value()).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service->stats().sessions_evicted_ttl, 1u);
}

// Sessions accumulate cross-round kernel-cache memory (slabs + gathered
// training matrices) as they run feedback rounds; the service accounts for
// it, and ending or evicting a session must release its share — eviction
// has to actually bound memory.
TEST_F(RetrievalServiceTest, SessionKernelCacheMemoryIsAccountedAndFreed) {
  ServiceOptions options;
  options.scheme = "LRF-CSVM";
  options.csvm.n_prime = 10;
  options.candidate_depth = 60;
  options.sessions.max_sessions = 2;
  auto service = MakeService(nullptr, options);
  EXPECT_EQ(service->stats().session_kernel_cache_bytes, 0u);

  logdb::SimulatedUser user(db_->categories(), logdb::UserModel{0.0});
  Rng rng(7);
  const auto run_round = [&](uint64_t sid, int query_id) {
    auto ranking = service->Query(sid, 60);
    ASSERT_TRUE(ranking.ok());
    std::vector<logdb::LogEntry> entries;
    for (int id : ranking.value()) {
      if (entries.size() >= 10) break;
      if (id == query_id) continue;
      entries.push_back(
          logdb::LogEntry{id, user.Judge(id, db_->category(query_id), &rng)});
    }
    ASSERT_TRUE(service->Feedback(sid, entries, 60).ok());
  };

  auto s1 = service->StartSession(1);
  ASSERT_TRUE(s1.ok());
  run_round(s1.value(), 1);
  const uint64_t after_one = service->stats().session_kernel_cache_bytes;
  EXPECT_GT(after_one, 0u);

  auto s2 = service->StartSession(2);
  ASSERT_TRUE(s2.ok());
  run_round(s2.value(), 2);
  const uint64_t after_two = service->stats().session_kernel_cache_bytes;
  EXPECT_GT(after_two, after_one);

  // Ending a session refunds exactly its share ...
  ASSERT_TRUE(service->EndSession(s1.value()).ok());
  EXPECT_EQ(service->stats().session_kernel_cache_bytes,
            after_two - after_one);

  // ... and capacity eviction refunds the victim's share too.
  auto s3 = service->StartSession(3);
  ASSERT_TRUE(s3.ok());
  auto s4 = service->StartSession(4);  // evicts s2 (LRU)
  ASSERT_TRUE(s4.ok());
  EXPECT_EQ(service->stats().sessions_evicted_capacity, 1u);
  EXPECT_EQ(service->stats().session_kernel_cache_bytes, 0u);
}

// A serve session re-ranked with a tiny kernel-cache row budget (constant
// eviction churn inside every solve) stays rank-identical to the default
// configuration: eviction pressure is a perf knob, never a results knob.
TEST_F(RetrievalServiceTest, TinyKernelCacheBudgetKeepsRankingsIdentical) {
  const auto run_session = [&](core::SchemeOptions scheme_options) {
    ServiceOptions options;
    options.scheme = "LRF-CSVM";
    options.csvm.n_prime = 10;
    options.candidate_depth = 60;
    auto service =
        RetrievalService::Create(db_, log_features_, nullptr, scheme_options,
                                 options);
    EXPECT_TRUE(service.ok()) << service.status();
    logdb::SimulatedUser user(db_->categories(), logdb::UserModel{0.0});
    Rng rng(9);
    auto sid = service.value()->StartSession(5);
    EXPECT_TRUE(sid.ok());
    std::vector<int> last;
    for (int round = 0; round < 2; ++round) {
      auto ranking = service.value()->Query(sid.value(), 60);
      EXPECT_TRUE(ranking.ok());
      std::vector<logdb::LogEntry> entries;
      for (int id : ranking.value()) {
        if (entries.size() >= 10) break;
        entries.push_back(
            logdb::LogEntry{id, user.Judge(id, db_->category(5), &rng)});
      }
      auto result = service.value()->Feedback(sid.value(), entries, 60);
      EXPECT_TRUE(result.ok()) << result.status();
      last = result.value();
    }
    return last;
  };

  core::SchemeOptions tiny = SchemeOpts();
  tiny.smo.cache_rows = 2;
  EXPECT_EQ(run_session(SchemeOpts()), run_session(tiny));
}

// Tentpole gate: a session opened with a raw feature vector (an image the
// corpus has never seen — here, a corpus image's feature re-submitted
// externally) reproduces the matching in-corpus session's ranking; the only
// difference is the identical-feature image itself, which the external
// session keeps (it has no corpus row to exclude).
TEST_F(RetrievalServiceTest, ExternalFeatureSessionReproducesCorpusSession) {
  retrieval::ImageDatabase db(*db_);
  retrieval::IndexOptions index_options;
  index_options.mode = retrieval::IndexMode::kSignature;
  db.BuildIndex(index_options);

  ServiceOptions options;
  options.scheme = "RF-SVM";
  options.candidate_depth = 50;
  auto service_or = RetrievalService::Create(
      &db, log_features_, nullptr,
      core::MakeDefaultSchemeOptions(db, log_features_), options);
  ASSERT_TRUE(service_or.ok());
  auto& service = *service_or.value();

  const int query_id = 31;
  auto by_id = service.StartSession(query_id);
  auto by_feature = service.StartSession(db.feature(query_id));
  ASSERT_TRUE(by_id.ok());
  ASSERT_TRUE(by_feature.ok()) << by_feature.status();

  auto strip_query = [&](std::vector<int> ranking) {
    ranking.erase(std::remove(ranking.begin(), ranking.end(), query_id),
                  ranking.end());
    return ranking;
  };

  auto id_ranking = service.Query(by_id.value(), 50);
  auto feature_ranking = service.Query(by_feature.value(), 50);
  ASSERT_TRUE(id_ranking.ok());
  ASSERT_TRUE(feature_ranking.ok());
  // Distance zero: the identical-feature corpus image leads the external
  // session's first round.
  ASSERT_FALSE(feature_ranking->empty());
  EXPECT_EQ(feature_ranking->front(), query_id);
  // Stripping may shorten the fixed-size top-k by one (the query image sat
  // inside it); the surviving prefix must match the by-id session exactly.
  std::vector<int> stripped = strip_query(feature_ranking.value());
  ASSERT_GE(stripped.size() + 1, id_ranking->size());
  std::vector<int> expected = id_ranking.value();
  expected.resize(std::min(stripped.size(), expected.size()));
  stripped.resize(expected.size());
  EXPECT_EQ(stripped, expected);

  // Identical judgments (never the query image) across feedback rounds keep
  // the two sessions rank-identical modulo the query image's own position.
  logdb::SimulatedUser user(db_->categories(), logdb::UserModel{0.0});
  Rng rng(7);
  const int category = db.category(query_id);
  std::unordered_set<int> judged{query_id};
  for (int round = 0; round < 2; ++round) {
    SCOPED_TRACE(round);
    std::vector<logdb::LogEntry> entries;
    for (int id : id_ranking.value()) {
      if (static_cast<int>(entries.size()) >= 10) break;
      if (!judged.insert(id).second) continue;
      entries.push_back(logdb::LogEntry{id, user.Judge(id, category, &rng)});
    }
    id_ranking = service.Feedback(by_id.value(), entries, 50);
    feature_ranking = service.Feedback(by_feature.value(), entries, 50);
    ASSERT_TRUE(id_ranking.ok());
    ASSERT_TRUE(feature_ranking.ok()) << feature_ranking.status();
    std::vector<int> stripped_round = strip_query(feature_ranking.value());
    ASSERT_GE(stripped_round.size() + 1, id_ranking->size());
    std::vector<int> expected_round = id_ranking.value();
    expected_round.resize(
        std::min(stripped_round.size(), expected_round.size()));
    stripped_round.resize(expected_round.size());
    EXPECT_EQ(stripped_round, expected_round);
  }
  EXPECT_TRUE(service.EndSession(by_id.value()).ok());
  EXPECT_TRUE(service.EndSession(by_feature.value()).ok());
}

TEST_F(RetrievalServiceTest, ExternalFeatureSessionValidatesInput) {
  ServiceOptions options;
  options.scheme = "Euclidean";
  auto service = MakeService(nullptr, options);
  // Wrong dimensionality.
  EXPECT_EQ(service->StartSession(la::Vec{1.0, 2.0}).status().code(),
            StatusCode::kInvalidArgument);
  // Empty.
  EXPECT_EQ(service->StartSession(la::Vec{}).status().code(),
            StatusCode::kInvalidArgument);
  // Non-finite values.
  la::Vec nan_feature = db_->feature(0);
  nan_feature[3] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(service->StartSession(nan_feature).status().code(),
            StatusCode::kInvalidArgument);
  // A perturbed (not identical to any corpus row) feature still serves.
  la::Vec perturbed = db_->feature(0);
  for (double& v : perturbed) v += 0.01;
  auto sid = service->StartSession(perturbed);
  ASSERT_TRUE(sid.ok()) << sid.status();
  auto ranking = service->Query(sid.value(), 10);
  ASSERT_TRUE(ranking.ok());
  EXPECT_EQ(ranking->size(), 10u);
  EXPECT_TRUE(service->EndSession(sid.value()).ok());
}

TEST_F(RetrievalServiceTest, DefaultKAndClamping) {
  ServiceOptions options;
  options.scheme = "Euclidean";
  options.default_k = 7;
  auto service = MakeService(nullptr, options);
  auto sid = service->StartSession(0);
  ASSERT_TRUE(sid.ok());
  auto by_default = service->Query(sid.value());
  ASSERT_TRUE(by_default.ok());
  EXPECT_EQ(by_default->size(), 7u);
  auto huge = service->Query(sid.value(), db_->num_images() * 2);
  ASSERT_TRUE(huge.ok());
  EXPECT_EQ(huge->size(), static_cast<size_t>(db_->num_images() - 1));
}

TEST_F(RetrievalServiceTest, FeedbackSeqIsIdempotent) {
  ServiceOptions options;
  options.scheme = "RF-SVM";
  logdb::LogStore store;
  auto service = MakeService(&store, options);

  // Two sessions on the same query: A applies each round once, B replays
  // its first round (the wire retry whose original actually landed). If the
  // dedup works, B's state never diverges from A's.
  const int query_id = 7;
  auto a = service->StartSession(query_id);
  auto b = service->StartSession(query_id);
  ASSERT_TRUE(a.ok() && b.ok());
  const std::vector<int> ranking_a = service->Query(a.value(), 15).value();
  const std::vector<int> ranking_b = service->Query(b.value(), 15).value();
  ASSERT_EQ(ranking_a, ranking_b);

  std::vector<logdb::LogEntry> round1 = {logdb::LogEntry{ranking_a[0], 1},
                                         logdb::LogEntry{ranking_a[1], -1}};
  const auto once = service->Feedback(a.value(), round1, 15, /*seq=*/1);
  ASSERT_TRUE(once.ok());
  const auto first = service->Feedback(b.value(), round1, 15, /*seq=*/1);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value(), once.value());
  // The duplicate: same session, same seq — answered from the idempotency
  // cache, not applied a second time.
  const auto replay = service->Feedback(b.value(), round1, 15, /*seq=*/1);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.value(), first.value());
  EXPECT_EQ(service->stats().feedback_replays, 1u);

  // A later round on both sessions: identical inputs must produce identical
  // rankings — proof the replayed round was applied exactly once.
  std::vector<logdb::LogEntry> round2 = {logdb::LogEntry{ranking_a[2], 1}};
  const auto a2 = service->Feedback(a.value(), round2, 15, /*seq=*/2);
  const auto b2 = service->Feedback(b.value(), round2, 15, /*seq=*/2);
  ASSERT_TRUE(a2.ok() && b2.ok());
  EXPECT_EQ(a2.value(), b2.value());

  // A seq below the session's high-water mark is a protocol error, not a
  // replay (only the latest response is cached).
  const auto stale = service->Feedback(b.value(), round1, 15, /*seq=*/1);
  EXPECT_EQ(stale.status().code(), StatusCode::kFailedPrecondition);

  // seq 0 (an unsequenced client) bypasses the dedup entirely.
  EXPECT_TRUE(service->Feedback(b.value(), round2, 15, /*seq=*/0).ok());

  EXPECT_TRUE(service->EndSession(a.value()).ok());
  EXPECT_TRUE(service->EndSession(b.value()).ok());
}

TEST_F(RetrievalServiceTest, AdmissionControlShedsOverCapacity) {
  ServiceOptions options;
  options.scheme = "RF-SVM";
  options.max_inflight = 1;
  auto service = MakeService(nullptr, options);

  // Occupy the single admission slot with slow work — each RF-SVM Feedback
  // trains an SVM, so the slot is held for milliseconds at a time — while
  // query threads hammer the valve. Some queries must be shed with
  // kUnavailable (reject-not-queue), every shed must carry the typed code,
  // and the service must keep serving normally afterwards.
  constexpr int kQueryThreads = 4;
  constexpr int kHeavyRounds = 12;
  std::atomic<int> served{0};
  std::atomic<int> shed{0};
  std::atomic<int> unexpected{0};
  std::atomic<bool> heavy_done{false};

  std::thread heavy([&] {
    auto sid = service->StartSession(0);
    if (!sid.ok()) {
      unexpected.fetch_add(1);
      heavy_done.store(true);
      return;
    }
    auto ranking = service->Query(sid.value(), 20);
    EXPECT_TRUE(ranking.ok()) << ranking.status();
    for (int i = 0; ranking.ok() && i < kHeavyRounds; ++i) {
      const std::vector<int>& ids = ranking.value();
      std::vector<logdb::LogEntry> round = {logdb::LogEntry{ids[1], 1},
                                            logdb::LogEntry{ids[2], -1}};
      while (true) {  // the heavy thread itself retries its own sheds
        auto r = service->Feedback(sid.value(), round, 20);
        if (r.ok()) {
          ranking = std::move(r);
          break;
        }
        if (r.status().code() != StatusCode::kUnavailable) {
          unexpected.fetch_add(1);
          break;
        }
        shed.fetch_add(1);
        std::this_thread::yield();
      }
      // Breathe between rounds so query threads get a turn at the slot.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    (void)service->EndSession(sid.value());
    heavy_done.store(true);
  });

  std::vector<std::thread> pool;
  for (int t = 0; t < kQueryThreads; ++t) {
    pool.emplace_back([&, t] {
      auto sid = service->StartSession(1 + t);
      if (!sid.ok()) {
        // StartSession is admission-free; it must never shed.
        unexpected.fetch_add(1);
        return;
      }
      while (!heavy_done.load()) {
        auto r = service->Query(sid.value(), 10);
        if (r.ok()) {
          served.fetch_add(1);
        } else if (r.status().code() == StatusCode::kUnavailable) {
          shed.fetch_add(1);
        } else {
          unexpected.fetch_add(1);
        }
      }
      (void)service->EndSession(sid.value());
    });
  }
  heavy.join();
  for (auto& t : pool) t.join();

  EXPECT_EQ(unexpected.load(), 0);
  // served may be 0 on a scheduler that lets the heavy thread monopolize
  // the slot; the serve path is proven by the post-storm query below.
  EXPECT_GT(shed.load(), 0)
      << "queries never collided with a millisecond-scale SVM train";
  EXPECT_EQ(service->stats().requests_shed_overload,
            static_cast<uint64_t>(shed.load()));

  // After the storm: the valve reopens completely.
  auto sid = service->StartSession(1);
  ASSERT_TRUE(sid.ok());
  EXPECT_TRUE(service->Query(sid.value(), 10).ok());
  EXPECT_TRUE(service->EndSession(sid.value()).ok());
}

TEST_F(RetrievalServiceTest, DeadlineShedsAreCounted) {
  ServiceOptions options;
  options.scheme = "Euclidean";
  auto service = MakeService(nullptr, options);
  EXPECT_EQ(service->stats().requests_shed_deadline, 0u);
  service->RecordDeadlineShed();
  service->RecordDeadlineShed();
  EXPECT_EQ(service->stats().requests_shed_deadline, 2u);
  const std::string formatted = FormatServiceStats(service->stats());
  EXPECT_NE(formatted.find("deadline=2"), std::string::npos) << formatted;
}

}  // namespace
}  // namespace cbir::serve
