#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/query_cache.h"
#include "serve/service_stats.h"
#include "serve/session_manager.h"

namespace cbir::serve {
namespace {

// ---------------------------------------------------------------- cache ----

TEST(QueryCacheTest, MissThenHit) {
  QueryCache cache(QueryCacheOptions{16, 4});
  std::vector<int> out;
  EXPECT_FALSE(cache.Lookup(1, &out));
  cache.Insert(1, {4, 5, 6}, cache.epoch());
  ASSERT_TRUE(cache.Lookup(1, &out));
  EXPECT_EQ(out, (std::vector<int>{4, 5, 6}));
  const QueryCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(QueryCacheTest, InvalidateMakesEntriesStale) {
  QueryCache cache(QueryCacheOptions{16, 1});
  cache.Insert(7, {1}, cache.epoch());
  cache.Invalidate();
  std::vector<int> out;
  EXPECT_FALSE(cache.Lookup(7, &out));
  EXPECT_EQ(cache.stats().invalidations, 1u);
  // An insert stamped with the pre-invalidate epoch is refused.
  const uint64_t stale = cache.epoch() - 1;
  cache.Insert(8, {2}, stale);
  EXPECT_FALSE(cache.Lookup(8, &out));
  // Fresh insert works again.
  cache.Insert(7, {3}, cache.epoch());
  EXPECT_TRUE(cache.Lookup(7, &out));
}

TEST(QueryCacheTest, LruEvictionWithinShard) {
  // One shard, capacity 2: inserting a third entry evicts the LRU one.
  QueryCache cache(QueryCacheOptions{2, 1});
  cache.Insert(1, {1}, cache.epoch());
  cache.Insert(2, {2}, cache.epoch());
  std::vector<int> out;
  ASSERT_TRUE(cache.Lookup(1, &out));  // 1 is now most recently used
  cache.Insert(3, {3}, cache.epoch());
  EXPECT_TRUE(cache.Lookup(1, &out));
  EXPECT_FALSE(cache.Lookup(2, &out));  // evicted
  EXPECT_TRUE(cache.Lookup(3, &out));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(QueryCacheTest, ZeroCapacityDisables) {
  QueryCache cache(QueryCacheOptions{0, 4});
  cache.Insert(1, {1}, cache.epoch());
  std::vector<int> out;
  EXPECT_FALSE(cache.Lookup(1, &out));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(QueryCacheTest, FingerprintSeparatesQueryDepthAndConfig) {
  const la::Vec a{1.0, 2.0, 3.0};
  la::Vec b = a;
  const uint64_t base = QueryCache::FingerprintQuery(a, 10, 1);
  EXPECT_EQ(QueryCache::FingerprintQuery(b, 10, 1), base);
  EXPECT_NE(QueryCache::FingerprintQuery(a, 11, 1), base);
  EXPECT_NE(QueryCache::FingerprintQuery(a, 10, 2), base);
  b[0] += 1e-12;
  EXPECT_NE(QueryCache::FingerprintQuery(b, 10, 1), base);
}

// ------------------------------------------------------------ histogram ----

TEST(LatencyHistogramTest, BucketLayoutRoundTrips) {
  // Every bucket's reconstructed upper bound must be consistent with its
  // index: value (upper - 1) still lands in the bucket, value upper in a
  // later one.
  for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
    const uint64_t upper = LatencyHistogram::BucketUpperBound(b);
    EXPECT_EQ(LatencyHistogram::BucketIndex(upper - 1), b) << upper;
    if (b + 1 < LatencyHistogram::kBuckets) {
      EXPECT_EQ(LatencyHistogram::BucketIndex(upper), b + 1);
    }
  }
}

TEST(LatencyHistogramTest, PercentilesAndMean) {
  LatencyHistogram h;
  for (int i = 0; i < 98; ++i) h.Record(100.0);
  h.Record(1000.0);
  h.Record(10000.0);
  const LatencySummary s = h.Summarize();
  EXPECT_EQ(s.count, 100u);
  // Bucket upper bounds over-estimate by at most one sub-bucket (12.5%).
  EXPECT_GE(s.p50_us, 100.0);
  EXPECT_LE(s.p50_us, 113.0);
  EXPECT_GE(s.p99_us, 1000.0);
  EXPECT_LE(s.p99_us, 1125.0);
  EXPECT_GE(s.max_us, 10000.0);
  EXPECT_NEAR(s.mean_us, (98 * 100.0 + 1000.0 + 10000.0) / 100.0, 1.0);
  h.Reset();
  EXPECT_EQ(h.Summarize().count, 0u);
}

TEST(ServiceStatsTest, FormatMentionsTheHeadlines) {
  ServiceStats stats;
  stats.qps = 123.4;
  stats.requests = 10;
  const std::string line = FormatServiceStats(stats);
  EXPECT_NE(line.find("qps=123.4"), std::string::npos);
  EXPECT_NE(line.find("requests=10"), std::string::npos);
  EXPECT_NE(line.find("latency_us"), std::string::npos);
}

// ------------------------------------------------------ session manager ----

std::shared_ptr<ServeSession> NewSession(uint64_t id) {
  auto session = std::make_shared<ServeSession>();
  session->id = id;
  return session;
}

TEST(SessionManagerTest, RegisterAcquireRemove) {
  SessionManager manager(SessionManagerOptions{4, 0.0}, nullptr);
  auto s = NewSession(1);
  manager.Register(s);
  EXPECT_EQ(manager.Acquire(1), s);
  EXPECT_EQ(manager.Acquire(2), nullptr);
  EXPECT_EQ(manager.Remove(1), s);
  EXPECT_EQ(manager.Acquire(1), nullptr);
  const SessionManagerStats stats = manager.stats();
  EXPECT_EQ(stats.started, 1u);
  EXPECT_EQ(stats.ended, 1u);
  EXPECT_EQ(stats.active, 0u);
}

TEST(SessionManagerTest, CapacityEvictsLeastRecentlyUsed) {
  std::vector<uint64_t> evicted;
  SessionManager manager(
      SessionManagerOptions{2, 0.0},
      [&](ServeSession& session) { evicted.push_back(session.id); });
  manager.Register(NewSession(1));
  manager.Register(NewSession(2));
  ASSERT_NE(manager.Acquire(1), nullptr);  // 2 becomes LRU
  manager.Register(NewSession(3));
  EXPECT_EQ(evicted, (std::vector<uint64_t>{2}));
  EXPECT_NE(manager.Acquire(1), nullptr);
  EXPECT_EQ(manager.Acquire(2), nullptr);
  EXPECT_EQ(manager.stats().evicted_capacity, 1u);
  // The evicted session was marked ended under its lock.
  EXPECT_EQ(manager.stats().active, 2u);
}

TEST(SessionManagerTest, TtlEvictsIdleOnly) {
  std::vector<uint64_t> evicted;
  SessionManager manager(
      SessionManagerOptions{8, 0.02},
      [&](ServeSession& session) { evicted.push_back(session.id); });
  manager.Register(NewSession(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // Fresh registration — and the lazy sweep evicts the expired session 1.
  manager.Register(NewSession(2));
  EXPECT_EQ(evicted, (std::vector<uint64_t>{1}));
  EXPECT_EQ(manager.stats().evicted_ttl, 1u);
  EXPECT_EQ(manager.EvictExpired(), 0u);  // nothing else is idle
  EXPECT_EQ(manager.Acquire(1), nullptr);
  EXPECT_NE(manager.Acquire(2), nullptr);
}

TEST(SessionManagerTest, AcquireRefreshesTtl) {
  SessionManager manager(SessionManagerOptions{8, 0.05}, nullptr);
  manager.Register(NewSession(1));
  for (int i = 0; i < 4; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_NE(manager.Acquire(1), nullptr) << i;
  }
  // Kept alive past 2x TTL by the touches; goes away once left idle.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_EQ(manager.EvictExpired(), 1u);
}

}  // namespace
}  // namespace cbir::serve
