#include "util/result.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace cbir {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> ok(7);
  Result<int> err(Status::IoError("x"));
  EXPECT_EQ(ok.ValueOr(0), 7);
  EXPECT_EQ(err.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoubleIt(int x) {
  CBIR_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagatesValue) {
  Result<int> r = DoubleIt(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  Result<int> r = DoubleIt(-3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r(Status::Internal("boom"));
  EXPECT_DEATH({ (void)r.value(); }, "Result::value");
}

}  // namespace
}  // namespace cbir
