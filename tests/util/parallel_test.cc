#include "util/parallel.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace cbir {
namespace {

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  const size_t n = 10000;
  std::vector<std::atomic<int>> counts(n);
  ParallelFor(n, [&](size_t i) { counts[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ZeroIterations) {
  bool called = false;
  ParallelFor(0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SingleThreadFallback) {
  std::vector<int> order;
  ParallelFor(5, [&](size_t i) { order.push_back(static_cast<int>(i)); },
              /*num_threads=*/1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));  // sequential order
}

TEST(ParallelForTest, ResultsMatchSequential) {
  const size_t n = 4096;
  std::vector<double> parallel_out(n), serial_out(n);
  auto work = [](size_t i) {
    double acc = 0.0;
    for (size_t k = 1; k <= (i % 64) + 1; ++k) acc += 1.0 / k;
    return acc;
  };
  ParallelFor(n, [&](size_t i) { parallel_out[i] = work(i); }, 8);
  for (size_t i = 0; i < n; ++i) serial_out[i] = work(i);
  EXPECT_EQ(parallel_out, serial_out);
}

TEST(ParallelForTest, NestedCallsRunSeriallyAndCorrectly) {
  // An inner ParallelFor issued from a worker must not spawn its own thread
  // team (oversubscription guard) and must still visit every index.
  const size_t outer = 8, inner = 100;
  std::vector<std::vector<int>> counts(outer, std::vector<int>(inner, 0));
  ParallelFor(outer, [&](size_t o) {
    ParallelFor(inner, [&](size_t i) { counts[o][i] += 1; }, 4);
  }, 4);
  for (size_t o = 0; o < outer; ++o) {
    for (size_t i = 0; i < inner; ++i) {
      EXPECT_EQ(counts[o][i], 1) << "o=" << o << " i=" << i;
    }
  }
}

TEST(EffectiveThreadCountTest, PositivePassThrough) {
  EXPECT_EQ(EffectiveThreadCount(3), 3);
}

TEST(EffectiveThreadCountTest, AutoDetectIsPositive) {
  EXPECT_GT(EffectiveThreadCount(0), 0);
}

}  // namespace
}  // namespace cbir
