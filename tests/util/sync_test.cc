#include "util/sync.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cbir::util {
namespace {

// The wrappers must impose zero cost when the checker is compiled out: a
// release Mutex is layout-identical to the std::mutex it wraps.
static_assert(kLockRankChecksEnabled || sizeof(Mutex) == sizeof(std::mutex),
              "util::Mutex must compile down to a bare std::mutex in "
              "release builds");
static_assert(kLockRankChecksEnabled ||
                  sizeof(SharedMutex) == sizeof(std::shared_mutex),
              "util::SharedMutex must compile down to a bare "
              "std::shared_mutex in release builds");

TEST(SyncTest, OrderedAcquisitionPasses) {
  Mutex low(LockRank::kSessionManager, "low");
  Mutex mid(LockRank::kSession, "mid");
  Mutex high(LockRank::kLogStore, "high");
  MutexLock a(low);
  MutexLock b(mid);
  MutexLock c(high);
}

TEST(SyncTest, ReleaseReopensTheRank) {
  Mutex a(LockRank::kSession, "a");
  Mutex b(LockRank::kSession, "b");
  // Same rank is fine sequentially — only *holding* both at once is an
  // inversion.
  { MutexLock lock(a); }
  { MutexLock lock(b); }
  { MutexLock lock(a); }
}

TEST(SyncTest, OutOfLifoUnlockIsAllowed) {
  Mutex low(LockRank::kSessionManager, "low");
  Mutex high(LockRank::kSession, "high");
  low.lock();
  high.lock();
  low.unlock();   // release the older lock first: legal
  high.unlock();
  // The stack must be coherent afterwards: a fresh ordered pair still works.
  MutexLock a(low);
  MutexLock b(high);
}

TEST(SyncDeathTest, SeededInversionAborts) {
  if (!kLockRankChecksEnabled) {
    GTEST_SKIP() << "lock-rank checker compiled out (NDEBUG build)";
  }
  // The seeded deadlock: thread A takes manager->session, thread B (here,
  // the same thread — the checker is order-based, not wait-based) takes
  // session->manager. The second acquisition must abort with both names.
  EXPECT_DEATH(
      {
        Mutex manager(LockRank::kSessionManager, "session_manager");
        Mutex session(LockRank::kSession, "serve_session");
        MutexLock s(session);
        MutexLock m(manager);  // rank 30 after rank 40: inversion
      },
      "lock-rank violation.*\"session_manager\".*"
      "holding \"serve_session\"");
}

TEST(SyncDeathTest, RecursiveAcquisitionAborts) {
  if (!kLockRankChecksEnabled) {
    GTEST_SKIP() << "lock-rank checker compiled out (NDEBUG build)";
  }
  EXPECT_DEATH(
      {
        Mutex mu(LockRank::kSession, "serve_session");
        MutexLock outer(mu);
        MutexLock inner(mu);  // would self-deadlock; must abort instead
      },
      "lock-rank violation: recursive acquisition of \"serve_session\"");
}

TEST(SyncDeathTest, EqualRankPairWithoutTwoMutexLockAborts) {
  if (!kLockRankChecksEnabled) {
    GTEST_SKIP() << "lock-rank checker compiled out (NDEBUG build)";
  }
  EXPECT_DEATH(
      {
        Mutex a(LockRank::kLogStore, "store_a");
        Mutex b(LockRank::kLogStore, "store_b");
        MutexLock la(a);
        MutexLock lb(b);  // same rank held twice outside TwoMutexLock
      },
      "lock-rank violation");
}

TEST(SyncDeathTest, AssertHeldAbortsWhenNotHeld) {
  if (!kLockRankChecksEnabled) {
    GTEST_SKIP() << "lock-rank checker compiled out (NDEBUG build)";
  }
  EXPECT_DEATH(
      {
        Mutex mu(LockRank::kSession, "serve_session");
        mu.AssertHeld();
      },
      "AssertHeld\\(\"serve_session\"\\) failed");
}

TEST(SyncDeathTest, AssertRankNotHeldAborts) {
  if (!kLockRankChecksEnabled) {
    GTEST_SKIP() << "lock-rank checker compiled out (NDEBUG build)";
  }
  EXPECT_DEATH(
      {
        Mutex mu(LockRank::kSessionManager, "session_manager");
        MutexLock lock(mu);
        AssertRankNotHeld(LockRank::kSessionManager, "the flush invariant");
      },
      "the flush invariant requires that no rank-30 lock is held");
}

TEST(SyncTest, AssertRankNotHeldPassesWhenClear) {
  Mutex mu(LockRank::kSession, "serve_session");
  MutexLock lock(mu);
  // A different rank being held is fine.
  AssertRankNotHeld(LockRank::kSessionManager, "the flush invariant");
  AssertNoRankHeldAtOrAbove(LockRank::kLogStore, "append ordering");
}

TEST(SyncTest, TwoMutexLockTakesAnEqualRankPairInEitherOrder) {
  Mutex a(LockRank::kLogStore, "store_a");
  Mutex b(LockRank::kLogStore, "store_b");
  { TwoMutexLock lock(a, b); }
  { TwoMutexLock lock(b, a); }
  // And cross-thread in opposite argument order: address ordering makes the
  // pair deadlock-free no matter how the two threads name them.
  std::atomic<int> done{0};
  std::thread t1([&] {
    for (int i = 0; i < 500; ++i) TwoMutexLock lock(a, b);
    done.fetch_add(1);
  });
  std::thread t2([&] {
    for (int i = 0; i < 500; ++i) TwoMutexLock lock(b, a);
    done.fetch_add(1);
  });
  t1.join();
  t2.join();
  EXPECT_EQ(done.load(), 2);
}

TEST(SyncTest, TryLockParticipatesInTheStack) {
  Mutex mu(LockRank::kSession, "serve_session");
  ASSERT_TRUE(mu.try_lock());
  // Another thread's try_lock must fail cleanly (and not touch this
  // thread's held stack).
  std::thread other([&] { EXPECT_FALSE(mu.try_lock()); });
  other.join();
  mu.unlock();
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(SyncTest, SharedMutexAllowsConcurrentReaders) {
  SharedMutex mu(LockRank::kMetrics, "metrics_registry");
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        ReaderLock lock(mu);
        const int now = concurrent.fetch_add(1) + 1;
        int prev = peak.load();
        while (now > prev && !peak.compare_exchange_weak(prev, now)) {
        }
        concurrent.fetch_sub(1);
      }
    });
  }
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(concurrent.load(), 0);
  // Not guaranteed by the standard, but with 4 spinning readers on a
  // shared_mutex at least two overlapping at some point is a safe bet; if
  // this ever flakes, the assertion (not the wrapper) is wrong.
  EXPECT_GE(peak.load(), 1);
  WriterLock write(mu);
}

TEST(SyncTest, RankStackIsPerThread) {
  // Thread A holding a high rank must not constrain thread B.
  Mutex high(LockRank::kStructuredLog, "log");
  Mutex low(LockRank::kTcpConnections, "connections");
  MutexLock hold_high(high);
  std::thread other([&] { MutexLock lock(low); });
  other.join();
}

TEST(SyncTest, CondVarWaitForTimesOutAndWakes) {
  Mutex mu(LockRank::kLifecycle, "stop");
  CondVar cv;
  bool flag = false;
  {
    // Timeout path: predicate stays false.
    MutexLock lock(mu);
    const bool woke = cv.WaitFor(mu, std::chrono::milliseconds(10),
                                 [&]() CBIR_REQUIRES(mu) { return flag; });
    EXPECT_FALSE(woke);
  }
  // Wake path: a second thread flips the flag and notifies; the wait
  // unlocks/relocks through the wrapper, so the rank checker's stack must
  // survive the round trip.
  std::thread setter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    MutexLock lock(mu);
    flag = true;
    cv.NotifyAll();
  });
  {
    MutexLock lock(mu);
    const bool woke = cv.WaitFor(mu, std::chrono::seconds(10),
                                 [&]() CBIR_REQUIRES(mu) { return flag; });
    EXPECT_TRUE(woke);
  }
  setter.join();
}

TEST(SyncTest, FullHierarchyChainAcquires) {
  // The documented hierarchy end to end: every rank in ascending order on
  // one thread must pass (this is the widest legal stack in the system).
  Mutex tcp(LockRank::kTcpConnections, "tcp");
  Mutex manager(LockRank::kSessionManager, "manager");
  Mutex session(LockRank::kSession, "session");
  Mutex cache(LockRank::kQueryCache, "cache");
  Mutex scheme(LockRank::kScheme, "scheme");
  Mutex store(LockRank::kLogStore, "store");
  Mutex slo(LockRank::kSlo, "slo");
  SharedMutex metrics(LockRank::kMetrics, "metrics");
  Mutex slog(LockRank::kStructuredLog, "slog");
  MutexLock l1(tcp);
  MutexLock l2(manager);
  MutexLock l3(session);
  MutexLock l4(cache);
  MutexLock l5(scheme);
  MutexLock l6(store);
  MutexLock l7(slo);
  ReaderLock l8(metrics);
  MutexLock l9(slog);
}

}  // namespace
}  // namespace cbir::util
