#include "util/status.h"

#include <sstream>

#include <gtest/gtest.h>

namespace cbir {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::OutOfRange("b"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::NotFound("c"), StatusCode::kNotFound, "NotFound"},
      {Status::AlreadyExists("d"), StatusCode::kAlreadyExists,
       "AlreadyExists"},
      {Status::IoError("e"), StatusCode::kIoError, "IoError"},
      {Status::NotImplemented("f"), StatusCode::kNotImplemented,
       "NotImplemented"},
      {Status::FailedPrecondition("g"), StatusCode::kFailedPrecondition,
       "FailedPrecondition"},
      {Status::Internal("h"), StatusCode::kInternal, "Internal"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(std::string(StatusCodeToString(c.code)), c.name);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos);
  }
}

TEST(StatusTest, ToStringIncludesMessage) {
  Status s = Status::IoError("disk on fire");
  EXPECT_EQ(s.ToString(), "IoError: disk on fire");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IoError("x"));
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream oss;
  oss << Status::InvalidArgument("bad");
  EXPECT_EQ(oss.str(), "InvalidArgument: bad");
}

Status FailsFast() { return Status::Internal("inner"); }

Status Propagates() {
  CBIR_RETURN_NOT_OK(FailsFast());
  return Status::OK();  // unreachable
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  Status s = Propagates();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

Status Succeeds() { return Status::OK(); }

Status PropagatesOk() {
  CBIR_RETURN_NOT_OK(Succeeds());
  return Status::NotFound("after");
}

TEST(StatusTest, ReturnNotOkMacroFallsThroughOnOk) {
  EXPECT_EQ(PropagatesOk().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace cbir
