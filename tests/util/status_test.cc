#include "util/status.h"

#include <algorithm>
#include <iterator>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace cbir {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::OutOfRange("b"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::NotFound("c"), StatusCode::kNotFound, "NotFound"},
      {Status::AlreadyExists("d"), StatusCode::kAlreadyExists,
       "AlreadyExists"},
      {Status::IoError("e"), StatusCode::kIoError, "IoError"},
      {Status::NotImplemented("f"), StatusCode::kNotImplemented,
       "NotImplemented"},
      {Status::FailedPrecondition("g"), StatusCode::kFailedPrecondition,
       "FailedPrecondition"},
      {Status::Internal("h"), StatusCode::kInternal, "Internal"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(std::string(StatusCodeToString(c.code)), c.name);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos);
  }
}

TEST(StatusTest, ToStringIncludesMessage) {
  Status s = Status::IoError("disk on fire");
  EXPECT_EQ(s.ToString(), "IoError: disk on fire");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IoError("x"));
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream oss;
  oss << Status::InvalidArgument("bad");
  EXPECT_EQ(oss.str(), "InvalidArgument: bad");
}

Status FailsFast() { return Status::Internal("inner"); }

Status Propagates() {
  CBIR_RETURN_NOT_OK(FailsFast());
  return Status::OK();  // unreachable
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  Status s = Propagates();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

Status Succeeds() { return Status::OK(); }

Status PropagatesOk() {
  CBIR_RETURN_NOT_OK(Succeeds());
  return Status::NotFound("after");
}

TEST(StatusTest, ReturnNotOkMacroFallsThroughOnOk) {
  EXPECT_EQ(PropagatesOk().code(), StatusCode::kNotFound);
}

TEST(StatusWireCodeTest, EveryEnumeratorRoundTripsExactly) {
  // Exhaustive: every enumerator survives the uint32 wire mapping, and the
  // wire values are pairwise distinct (two codes sharing a wire value would
  // silently alias remote errors).
  std::set<uint32_t> seen;
  for (StatusCode code : kAllStatusCodes) {
    const uint32_t wire = StatusCodeToWireCode(code);
    EXPECT_TRUE(seen.insert(wire).second)
        << "duplicate wire code " << wire << " for "
        << StatusCodeToString(code);
    EXPECT_EQ(StatusCodeFromWireCode(wire), code)
        << StatusCodeToString(code);
  }
  // kAllStatusCodes itself must be exhaustive: wire values are the enum's
  // numeric values, contiguous from 0, so the next value after the largest
  // must be unknown.
  uint32_t max_wire = 0;
  for (StatusCode code : kAllStatusCodes) {
    max_wire = std::max(max_wire, StatusCodeToWireCode(code));
  }
  EXPECT_EQ(max_wire + 1, static_cast<uint32_t>(std::size(kAllStatusCodes)));
}

TEST(StatusWireCodeTest, UnknownWireValuesMapToInternalNeverOk) {
  // First value past the known range (kAllStatusCodes is contiguous from
  // 0, checked above), plus far-out garbage.
  const uint32_t past_end = static_cast<uint32_t>(std::size(kAllStatusCodes));
  for (const uint32_t bogus : {past_end, 100u, 0xFFFFFFFFu}) {
    EXPECT_EQ(StatusCodeFromWireCode(bogus), StatusCode::kInternal);
  }
}

TEST(StatusWireCodeTest, StatusCodeToStringCoversEveryEnumerator) {
  std::set<std::string> names;
  for (StatusCode code : kAllStatusCodes) {
    const std::string name = StatusCodeToString(code);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "Unknown") << "enumerator missing from the switch";
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
}

}  // namespace
}  // namespace cbir
