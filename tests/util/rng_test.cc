#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace cbir {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(17);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(uint64_t{10});
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit over 1000 draws
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(19);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(int64_t{-2}, int64_t{2});
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(23);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianScaled) {
  Rng rng(29);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(43);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{9};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{9});
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(47);
  const auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleWithoutReplacementClampsToN) {
  Rng rng(53);
  const auto sample = rng.SampleWithoutReplacement(5, 50);
  EXPECT_EQ(sample.size(), 5u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(61);
  Rng child = a.Fork();
  // The child stream must not replay the parent stream.
  Rng b(61);
  b.Next();  // advance past the Fork draw
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace cbir
