#include "util/flags.h"

#include <gtest/gtest.h>

namespace cbir {
namespace {

Flags MustParse(std::vector<const char*> args) {
  auto r = Flags::Parse(static_cast<int>(args.size()), args.data());
  CBIR_CHECK(r.ok()) << r.status();
  return std::move(r).value();
}

TEST(FlagsTest, KeyEqualsValue) {
  const Flags f = MustParse({"--dataset=20cat", "--queries=200"});
  EXPECT_EQ(f.GetString("dataset", ""), "20cat");
  EXPECT_EQ(f.GetInt("queries", 0), 200);
}

TEST(FlagsTest, KeySpaceValue) {
  const Flags f = MustParse({"--queries", "50", "--noise", "0.25"});
  EXPECT_EQ(f.GetInt("queries", 0), 50);
  EXPECT_DOUBLE_EQ(f.GetDouble("noise", 0.0), 0.25);
}

TEST(FlagsTest, BareBooleanFlag) {
  const Flags f = MustParse({"--verbose", "--fast", "--level=3"});
  EXPECT_TRUE(f.GetBool("verbose", false));
  EXPECT_TRUE(f.GetBool("fast", false));
  EXPECT_FALSE(f.GetBool("absent", false));
}

TEST(FlagsTest, BooleanSpellings) {
  const Flags f = MustParse({"--a=true", "--b=0", "--c=yes", "--d=off",
                             "--e=banana"});
  EXPECT_TRUE(f.GetBool("a", false));
  EXPECT_FALSE(f.GetBool("b", true));
  EXPECT_TRUE(f.GetBool("c", false));
  EXPECT_FALSE(f.GetBool("d", true));
  EXPECT_TRUE(f.GetBool("e", true));  // unparseable -> fallback
}

TEST(FlagsTest, Positional) {
  const Flags f = MustParse({"input.txt", "--k=1", "output.txt"});
  EXPECT_EQ(f.positional(),
            (std::vector<std::string>{"input.txt", "output.txt"}));
}

TEST(FlagsTest, BareFlagFollowedByFlag) {
  const Flags f = MustParse({"--dry-run", "--queries=5"});
  EXPECT_TRUE(f.GetBool("dry-run", false));
  EXPECT_EQ(f.GetInt("queries", 0), 5);
}

TEST(FlagsTest, StrictGettersReportErrors) {
  const Flags f = MustParse({"--n=abc", "--x=1.5"});
  EXPECT_FALSE(f.GetIntStrict("n").ok());
  EXPECT_FALSE(f.GetIntStrict("missing").ok());
  EXPECT_EQ(f.GetIntStrict("missing").status().code(), StatusCode::kNotFound);
  auto d = f.GetDoubleStrict("x");
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d.value(), 1.5);
}

TEST(FlagsTest, AbsentFlagFallsBack) {
  const Flags f = MustParse({"--n=3"});
  EXPECT_EQ(f.GetInt("missing", 7), 7);
  EXPECT_DOUBLE_EQ(f.GetDouble("missing", 2.5), 2.5);
}

TEST(FlagsDeathTest, NonNumericValueIsFatal) {
  // A present-but-garbage value must never run the default config silently.
  const Flags f = MustParse({"--n=abc", "--x=1.2.3"});
  EXPECT_DEATH((void)f.GetInt("n", 7), "not an integer");
  EXPECT_DEATH((void)f.GetDouble("x", 2.5), "not a number");
  EXPECT_DEATH((void)f.GetInt("x", 7), "not an integer");
}

TEST(FlagsTest, RequireKnownAcceptsKnownFlags) {
  const Flags f = MustParse({"--queries=5", "--verbose"});
  EXPECT_TRUE(f.RequireKnown({"queries", "verbose", "unused"}).ok());
  EXPECT_TRUE(MustParse({}).RequireKnown({}).ok());
}

TEST(FlagsTest, RequireKnownRejectsUnknownFlags) {
  const Flags f = MustParse({"--queries=5", "--quieries=7", "--typo"});
  const Status s = f.RequireKnown({"queries"});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.ToString().find("--quieries"), std::string::npos);
  EXPECT_NE(s.ToString().find("--typo"), std::string::npos);
  EXPECT_EQ(s.ToString().find("--queries,"), std::string::npos);
}

TEST(FlagsTest, LastValueWins) {
  const Flags f = MustParse({"--k=1", "--k=2"});
  EXPECT_EQ(f.GetInt("k", 0), 2);
}

TEST(FlagsTest, RejectsMalformed) {
  {
    const char* args[] = {"--"};
    EXPECT_FALSE(Flags::Parse(1, args).ok());
  }
  {
    const char* args[] = {"--=value"};
    EXPECT_FALSE(Flags::Parse(1, args).ok());
  }
}

TEST(FlagsTest, KeysListsAllFlags) {
  const Flags f = MustParse({"--b=1", "--a=2"});
  EXPECT_EQ(f.Keys(), (std::vector<std::string>{"a", "b"}));  // sorted (map)
}

TEST(FlagsTest, EmptyArgv) {
  const Flags f = MustParse({});
  EXPECT_TRUE(f.positional().empty());
  EXPECT_TRUE(f.Keys().empty());
}

}  // namespace
}  // namespace cbir
