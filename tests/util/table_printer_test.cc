#include "util/table_printer.h"

#include <gtest/gtest.h>

namespace cbir {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"#TOP", "Euclidean"});
  t.AddRow({"20", "0.398"});
  t.AddRow({"100", "0.221"});
  const std::string out = t.ToString();
  // Header present and separator drawn.
  EXPECT_NE(out.find("#TOP"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // Rows are present.
  EXPECT_NE(out.find("0.398"), std::string::npos);
  EXPECT_NE(out.find("0.221"), std::string::npos);
}

TEST(TablePrinterTest, ColumnWidthFollowsWidestCell) {
  TablePrinter t({"a", "b"});
  t.AddRow({"wide-cell-here", "x"});
  const std::string out = t.ToString();
  // The header row is padded to the data width: "a" followed by spaces up to
  // the width of "wide-cell-here" plus the 2-space gutter, then "b".
  const std::string header_line = out.substr(0, out.find('\n'));
  EXPECT_EQ(header_line.find('b'), std::string("wide-cell-here").size() + 2);
}

TEST(TablePrinterTest, SeparatorRows) {
  TablePrinter t({"x"});
  t.AddRow({"1"});
  t.AddSeparator();
  t.AddRow({"2"});
  const std::string out = t.ToString();
  // Header separator + explicit separator = at least 2 dashed lines.
  size_t dashes = 0;
  size_t pos = 0;
  while ((pos = out.find("\n-", pos)) != std::string::npos) {
    ++dashes;
    pos += 2;
  }
  EXPECT_GE(dashes, 2u);
  EXPECT_EQ(t.num_rows(), 3u);  // 2 data + 1 separator
}

TEST(TablePrinterDeathTest, RowArityMismatch) {
  TablePrinter t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "Check failed");
}

}  // namespace
}  // namespace cbir
