#include "util/csv_writer.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace cbir {
namespace {

TEST(CsvWriterTest, BasicRows) {
  CsvWriter csv({"n", "precision"});
  csv.AddRow({"20", "0.398"});
  csv.AddRow({"30", "0.342"});
  EXPECT_EQ(csv.ToString(), "n,precision\n20,0.398\n30,0.342\n");
  EXPECT_EQ(csv.num_rows(), 2u);
}

TEST(CsvWriterTest, QuotesSpecialCharacters) {
  CsvWriter csv({"name", "note"});
  csv.AddRow({"a,b", "say \"hi\""});
  EXPECT_EQ(csv.ToString(), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(CsvWriterTest, QuotesNewlines) {
  CsvWriter csv({"x"});
  csv.AddRow({"line1\nline2"});
  EXPECT_EQ(csv.ToString(), "x\n\"line1\nline2\"\n");
}

TEST(CsvWriterTest, NumericRowFormatting) {
  CsvWriter csv({"a", "b"});
  csv.AddNumericRow({0.5, 123456.0});
  EXPECT_EQ(csv.ToString(), "a,b\n0.5,123456\n");
}

TEST(CsvWriterTest, WriteToFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/csv_writer_test.csv";
  CsvWriter csv({"k", "v"});
  csv.AddRow({"1", "one"});
  ASSERT_TRUE(csv.WriteToFile(path).ok());
  std::ifstream ifs(path);
  std::stringstream buffer;
  buffer << ifs.rdbuf();
  EXPECT_EQ(buffer.str(), "k,v\n1,one\n");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, WriteToBadPathFails) {
  CsvWriter csv({"x"});
  EXPECT_FALSE(csv.WriteToFile("/nonexistent-dir/deep/file.csv").ok());
}

}  // namespace
}  // namespace cbir
