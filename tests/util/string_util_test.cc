#include "util/string_util.h"

#include <gtest/gtest.h>

namespace cbir {
namespace {

TEST(SplitTest, Basic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, NoDelimiter) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(SplitTest, EmptyInput) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"one"}, ","), "one");
}

TEST(TrimTest, Basic) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("inner space kept"), "inner space kept");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("prefix-rest", "prefix"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("ab", "abc"));
  EXPECT_FALSE(StartsWith("xbc", "abc"));
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(0.4237, 3), "0.424");
  EXPECT_EQ(FormatDouble(1.0, 1), "1.0");
  EXPECT_EQ(FormatDouble(-2.5, 2), "-2.50");
}

TEST(FormatPercentTest, SignedOneDecimal) {
  EXPECT_EQ(FormatPercent(0.424), "+42.4%");
  EXPECT_EQ(FormatPercent(-0.051), "-5.1%");
  EXPECT_EQ(FormatPercent(0.0), "+0.0%");
}

}  // namespace
}  // namespace cbir
