#include "svm/smo_solver.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cbir::svm {
namespace {

la::Matrix MatrixFromRows(const std::vector<la::Vec>& rows) {
  la::Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) m.SetRow(r, rows[r]);
  return m;
}

TEST(SmoSolverTest, TwoPointAnalyticSolution) {
  // +1 at x=0, -1 at x=2, linear kernel, C large.
  // Max-margin solution: f(x) = 1 - x, alpha_1 = alpha_2 = 0.5,
  // dual objective = -0.5.
  const la::Matrix data = MatrixFromRows({{0.0}, {2.0}});
  SmoSolver solver(data, {1.0, -1.0}, {10.0, 10.0}, KernelParams::Linear());
  auto sol = solver.Solve();
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_TRUE(sol->converged);
  EXPECT_NEAR(sol->alpha[0], 0.5, 1e-3);
  EXPECT_NEAR(sol->alpha[1], 0.5, 1e-3);
  EXPECT_NEAR(sol->bias, 1.0, 1e-3);
  EXPECT_NEAR(sol->objective, -0.5, 1e-3);
}

TEST(SmoSolverTest, EqualityConstraintHolds) {
  Rng rng(17);
  const size_t n = 30;
  la::Matrix data(n, 3);
  std::vector<double> y(n), c(n, 5.0);
  for (size_t i = 0; i < n; ++i) {
    y[i] = (i % 2 == 0) ? 1.0 : -1.0;
    for (size_t d = 0; d < 3; ++d) {
      data.At(i, d) = rng.Gaussian() + (y[i] > 0 ? 1.0 : -1.0);
    }
  }
  SmoSolver solver(data, y, c, KernelParams::Rbf(0.5));
  auto sol = solver.Solve();
  ASSERT_TRUE(sol.ok());
  double constraint = 0.0;
  for (size_t i = 0; i < n; ++i) constraint += sol->alpha[i] * y[i];
  EXPECT_NEAR(constraint, 0.0, 1e-9);
}

TEST(SmoSolverTest, BoxConstraintsRespected) {
  Rng rng(19);
  const size_t n = 24;
  la::Matrix data(n, 2);
  std::vector<double> y(n), c(n);
  for (size_t i = 0; i < n; ++i) {
    y[i] = (i % 2 == 0) ? 1.0 : -1.0;
    c[i] = 0.1 + 0.4 * static_cast<double>(i % 5);  // heterogeneous bounds
    // Overlapping classes so bounds bind.
    data.At(i, 0) = rng.Gaussian() + 0.2 * y[i];
    data.At(i, 1) = rng.Gaussian();
  }
  SmoSolver solver(data, y, c, KernelParams::Rbf(1.0));
  auto sol = solver.Solve();
  ASSERT_TRUE(sol.ok());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_GE(sol->alpha[i], -1e-12);
    EXPECT_LE(sol->alpha[i], c[i] + 1e-12);
  }
}

// Verifies the KKT optimality conditions against the returned model:
//   alpha = 0      =>  y f(x) >= 1 - tol
//   0 < alpha < C  =>  |y f(x) - 1| <= tol
//   alpha = C      =>  y f(x) <= 1 + tol
void CheckKkt(const la::Matrix& data, const std::vector<double>& y,
              const std::vector<double>& c, const KernelParams& kernel,
              const SmoSolution& sol, double tol) {
  const size_t n = data.rows();
  for (size_t i = 0; i < n; ++i) {
    double f = sol.bias;
    for (size_t j = 0; j < n; ++j) {
      f += sol.alpha[j] * y[j] * EvalKernel(kernel, data.Row(j), data.Row(i));
    }
    const double margin = y[i] * f;
    if (sol.alpha[i] <= 1e-9) {
      EXPECT_GE(margin, 1.0 - tol) << "i=" << i;
    } else if (sol.alpha[i] >= c[i] - 1e-9) {
      EXPECT_LE(margin, 1.0 + tol) << "i=" << i;
    } else {
      EXPECT_NEAR(margin, 1.0, tol) << "i=" << i;
    }
  }
}

TEST(SmoSolverTest, KktConditionsOnSeparableData) {
  Rng rng(23);
  const size_t n = 40;
  la::Matrix data(n, 2);
  std::vector<double> y(n), c(n, 10.0);
  for (size_t i = 0; i < n; ++i) {
    y[i] = (i < n / 2) ? 1.0 : -1.0;
    data.At(i, 0) = rng.Gaussian() + 3.0 * y[i];
    data.At(i, 1) = rng.Gaussian();
  }
  const KernelParams kernel = KernelParams::Linear();
  SmoSolver solver(data, y, c, kernel);
  auto sol = solver.Solve();
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol->converged);
  CheckKkt(data, y, c, kernel, *sol, 0.02);
}

TEST(SmoSolverTest, KktConditionsOnOverlappingDataRbf) {
  Rng rng(29);
  const size_t n = 50;
  la::Matrix data(n, 3);
  std::vector<double> y(n), c(n, 2.0);
  for (size_t i = 0; i < n; ++i) {
    y[i] = (i % 2 == 0) ? 1.0 : -1.0;
    for (size_t d = 0; d < 3; ++d) {
      data.At(i, d) = rng.Gaussian() + 0.5 * y[i];
    }
  }
  const KernelParams kernel = KernelParams::Rbf(0.7);
  SmoSolver solver(data, y, c, kernel);
  auto sol = solver.Solve();
  ASSERT_TRUE(sol.ok());
  CheckKkt(data, y, c, kernel, *sol, 0.02);
}

TEST(SmoSolverTest, XorSolvableWithRbf) {
  const la::Matrix data =
      MatrixFromRows({{0, 0}, {1, 1}, {0, 1}, {1, 0}});
  const std::vector<double> y{1.0, 1.0, -1.0, -1.0};
  const KernelParams kernel = KernelParams::Rbf(2.0);
  SmoSolver solver(data, y, {50, 50, 50, 50}, kernel);
  auto sol = solver.Solve();
  ASSERT_TRUE(sol.ok());
  for (size_t i = 0; i < 4; ++i) {
    double f = sol->bias;
    for (size_t j = 0; j < 4; ++j) {
      f += sol->alpha[j] * y[j] *
           EvalKernel(kernel, data.Row(j), data.Row(i));
    }
    EXPECT_GT(y[i] * f, 0.0) << "XOR point " << i << " misclassified";
  }
}

TEST(SmoSolverTest, SingleClassDataConverges) {
  const la::Matrix data = MatrixFromRows({{0.0}, {1.0}, {2.0}});
  SmoSolver solver(data, {1.0, 1.0, 1.0}, {1, 1, 1}, KernelParams::Linear());
  auto sol = solver.Solve();
  ASSERT_TRUE(sol.ok());
  // With all labels equal, the equality constraint forces alpha = 0.
  for (double a : sol->alpha) EXPECT_NEAR(a, 0.0, 1e-12);
  EXPECT_TRUE(sol->converged);
}

TEST(SmoSolverTest, DuplicateContradictoryPointsSaturate) {
  // The same point labeled both ways: both alphas hit the box bound.
  const la::Matrix data = MatrixFromRows({{1.0}, {1.0}});
  SmoSolver solver(data, {1.0, -1.0}, {0.7, 0.7}, KernelParams::Linear());
  auto sol = solver.Solve();
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->alpha[0], 0.7, 1e-6);
  EXPECT_NEAR(sol->alpha[1], 0.7, 1e-6);
}

TEST(SmoSolverTest, PerSampleBoundLimitsInfluence) {
  // Same geometry, but one sample's C is tiny: its alpha must stay small.
  const la::Matrix data = MatrixFromRows({{0.0}, {0.1}, {2.0}});
  const std::vector<double> y{1.0, 1.0, -1.0};
  SmoSolver solver(data, y, {10.0, 0.01, 10.0}, KernelParams::Linear());
  auto sol = solver.Solve();
  ASSERT_TRUE(sol.ok());
  EXPECT_LE(sol->alpha[1], 0.01 + 1e-12);
}

TEST(SmoSolverTest, RejectsBadInputs) {
  const la::Matrix data = MatrixFromRows({{0.0}, {1.0}});
  {
    SmoSolver s(data, {1.0, 0.5}, {1, 1}, KernelParams::Linear());
    EXPECT_FALSE(s.Solve().ok());  // label not +-1
  }
  {
    SmoSolver s(data, {1.0, -1.0}, {1, 0}, KernelParams::Linear());
    EXPECT_FALSE(s.Solve().ok());  // non-positive C
  }
}

TEST(SmoSolverTest, ObjectiveMatchesDirectComputation) {
  Rng rng(31);
  const size_t n = 20;
  la::Matrix data(n, 2);
  std::vector<double> y(n), c(n, 1.5);
  for (size_t i = 0; i < n; ++i) {
    y[i] = (i % 2 == 0) ? 1.0 : -1.0;
    data.At(i, 0) = rng.Gaussian() + y[i];
    data.At(i, 1) = rng.Gaussian();
  }
  const KernelParams kernel = KernelParams::Rbf(0.4);
  SmoSolver solver(data, y, c, kernel);
  auto sol = solver.Solve();
  ASSERT_TRUE(sol.ok());
  // 0.5 a'Qa - e'a computed directly.
  double direct = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      direct += 0.5 * sol->alpha[i] * sol->alpha[j] * y[i] * y[j] *
                EvalKernel(kernel, data.Row(i), data.Row(j));
    }
    direct -= sol->alpha[i];
  }
  EXPECT_NEAR(sol->objective, direct, 1e-9);
}

// Shared fixture data: overlapping two-class Gaussian problem.
struct DenseProblem {
  la::Matrix data;
  std::vector<double> y;
  std::vector<double> c;
};

DenseProblem MakeDenseProblem(size_t n, double gap, double c_value,
                              uint64_t seed) {
  Rng rng(seed);
  DenseProblem p;
  p.data = la::Matrix(n, 4);
  p.y.resize(n);
  p.c.assign(n, c_value);
  for (size_t i = 0; i < n; ++i) {
    p.y[i] = (i % 2 == 0) ? 1.0 : -1.0;
    for (size_t d = 0; d < 4; ++d) {
      p.data.At(i, d) = rng.Gaussian() + (d == 0 ? gap * p.y[i] : 0.0);
    }
  }
  return p;
}

TEST(SmoSolverTest, ShrinkingMatchesNoShrinkingSolution) {
  const DenseProblem p = MakeDenseProblem(80, 0.4, 20.0, 41);
  const KernelParams kernel = KernelParams::Rbf(0.3);

  SmoOptions no_shrink;
  no_shrink.shrinking = false;
  SmoSolver cold(p.data, p.y, p.c, kernel, no_shrink);
  auto base = cold.Solve();
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(base->converged);

  SmoOptions shrink;
  shrink.shrinking = true;
  shrink.shrink_interval = 10;  // force many shrink passes on a small problem
  SmoSolver fast(p.data, p.y, p.c, kernel, shrink);
  auto sol = fast.Solve();
  ASSERT_TRUE(sol.ok());
  ASSERT_TRUE(sol->converged);
  EXPECT_GT(sol->shrink_passes, 0);

  // Same optimum: objective within tolerance, decisions equivalent.
  EXPECT_NEAR(sol->objective, base->objective, 1e-6);
  for (size_t t = 0; t < p.data.rows(); ++t) {
    EXPECT_NEAR(sol->train_decisions[t], base->train_decisions[t], 5e-3)
        << "t=" << t;
  }
}

TEST(SmoSolverTest, ShrinkingWithTinyCacheStaysCorrect) {
  const DenseProblem p = MakeDenseProblem(50, 0.5, 10.0, 43);
  const KernelParams kernel = KernelParams::Rbf(0.4);

  SmoOptions reference;
  reference.shrinking = false;
  SmoSolver ref_solver(p.data, p.y, p.c, kernel, reference);
  auto ref = ref_solver.Solve();
  ASSERT_TRUE(ref.ok());

  SmoOptions tiny;
  tiny.shrinking = true;
  tiny.shrink_interval = 7;
  tiny.cache_rows = 3;  // heavy eviction under the slab cache
  SmoSolver solver(p.data, p.y, p.c, kernel, tiny);
  auto sol = solver.Solve();
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, ref->objective, 1e-6);
  EXPECT_GT(sol->cache_stats.evictions, 0u);
}

TEST(SmoSolverTest, WarmStartFromOwnSolutionConvergesInstantly) {
  const DenseProblem p = MakeDenseProblem(40, 0.6, 10.0, 47);
  const KernelParams kernel = KernelParams::Rbf(0.5);

  SmoSolver cold(p.data, p.y, p.c, kernel);
  auto base = cold.Solve();
  ASSERT_TRUE(base.ok());

  SmoOptions warm_options;
  warm_options.initial_alpha = base->alpha;
  SmoSolver warm(p.data, p.y, p.c, kernel, warm_options);
  auto sol = warm.Solve();
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol->converged);
  EXPECT_EQ(sol->iterations, 0);
  EXPECT_NEAR(sol->objective, base->objective, 1e-9);
  for (size_t t = 0; t < p.data.rows(); ++t) {
    EXPECT_NEAR(sol->alpha[t], base->alpha[t], 1e-9);
  }
}

TEST(SmoSolverTest, WarmStartMatchesColdStartAfterGrowth) {
  // Feedback-round simulation: solve on the first 30 samples, then warm-start
  // the 40-sample problem from the padded alphas. Objective and decisions
  // must match the cold solve of the full problem.
  const DenseProblem full = MakeDenseProblem(40, 0.5, 10.0, 53);
  const KernelParams kernel = KernelParams::Rbf(0.5);

  DenseProblem first;
  first.data = la::Matrix(30, 4);
  for (size_t i = 0; i < 30; ++i) first.data.SetRow(i, full.data.Row(i));
  first.y.assign(full.y.begin(), full.y.begin() + 30);
  first.c.assign(full.c.begin(), full.c.begin() + 30);
  SmoSolver round0(first.data, first.y, first.c, kernel);
  auto sol0 = round0.Solve();
  ASSERT_TRUE(sol0.ok());

  SmoOptions warm_options;
  warm_options.initial_alpha = sol0->alpha;
  warm_options.initial_alpha.resize(40, 0.0);  // new samples enter at zero
  SmoSolver warm(full.data, full.y, full.c, kernel, warm_options);
  auto warm_sol = warm.Solve();
  ASSERT_TRUE(warm_sol.ok());

  SmoSolver cold(full.data, full.y, full.c, kernel);
  auto cold_sol = cold.Solve();
  ASSERT_TRUE(cold_sol.ok());

  EXPECT_NEAR(warm_sol->objective, cold_sol->objective, 1e-6);
  for (size_t t = 0; t < 40; ++t) {
    EXPECT_NEAR(warm_sol->train_decisions[t], cold_sol->train_decisions[t],
                5e-3)
        << "t=" << t;
  }
  // The warm solve must do less work than the cold one.
  EXPECT_LT(warm_sol->iterations, cold_sol->iterations);
}

TEST(SmoSolverTest, WarmStartRepairsInfeasibleInitialAlpha) {
  // Deliberately infeasible warm start: everything at the box bound violates
  // both the equality constraint and (after label flips) class consistency.
  const DenseProblem p = MakeDenseProblem(30, 0.5, 5.0, 59);
  const KernelParams kernel = KernelParams::Rbf(0.5);

  SmoOptions warm_options;
  warm_options.initial_alpha.assign(30, 1e9);  // clamped to C, then projected
  SmoSolver warm(p.data, p.y, p.c, kernel, warm_options);
  auto sol = warm.Solve();
  ASSERT_TRUE(sol.ok());
  ASSERT_TRUE(sol->converged);
  double constraint = 0.0;
  for (size_t t = 0; t < 30; ++t) {
    constraint += sol->alpha[t] * p.y[t];
    EXPECT_GE(sol->alpha[t], -1e-12);
    EXPECT_LE(sol->alpha[t], p.c[t] + 1e-12);
  }
  EXPECT_NEAR(constraint, 0.0, 1e-9);

  SmoSolver cold(p.data, p.y, p.c, kernel);
  auto base = cold.Solve();
  ASSERT_TRUE(base.ok());
  EXPECT_NEAR(sol->objective, base->objective, 1e-6);
}

TEST(SmoSolverTest, WarmStartSizeMismatchRejected) {
  const la::Matrix data = MatrixFromRows({{0.0}, {2.0}});
  SmoOptions options;
  options.initial_alpha = {0.5};  // wrong size
  SmoSolver solver(data, {1.0, -1.0}, {10.0, 10.0}, KernelParams::Linear(),
                   options);
  EXPECT_FALSE(solver.Solve().ok());
}

TEST(SmoSolverTest, TrainDecisionsMatchDirectEvaluation) {
  const DenseProblem p = MakeDenseProblem(24, 0.8, 5.0, 61);
  const KernelParams kernel = KernelParams::Rbf(0.6);
  SmoSolver solver(p.data, p.y, p.c, kernel);
  auto sol = solver.Solve();
  ASSERT_TRUE(sol.ok());
  for (size_t i = 0; i < 24; ++i) {
    double f = sol->bias;
    for (size_t j = 0; j < 24; ++j) {
      f += sol->alpha[j] * p.y[j] *
           EvalKernel(kernel, p.data.Row(j), p.data.Row(i));
    }
    EXPECT_NEAR(sol->train_decisions[i], f, 1e-9) << i;
  }
}

TEST(SmoSolverTest, LargerCReducesTrainingError) {
  // Overlapping data: larger C must not increase the hinge loss.
  Rng rng(37);
  const size_t n = 40;
  la::Matrix data(n, 2);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    y[i] = (i % 2 == 0) ? 1.0 : -1.0;
    data.At(i, 0) = rng.Gaussian() + 0.6 * y[i];
    data.At(i, 1) = rng.Gaussian();
  }
  const KernelParams kernel = KernelParams::Rbf(0.8);
  auto hinge_at = [&](double c_value) {
    SmoSolver solver(data, y, std::vector<double>(n, c_value), kernel);
    auto sol = solver.Solve();
    EXPECT_TRUE(sol.ok());
    double hinge = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double f = sol->bias;
      for (size_t j = 0; j < n; ++j) {
        f += sol->alpha[j] * y[j] *
             EvalKernel(kernel, data.Row(j), data.Row(i));
      }
      hinge += std::max(0.0, 1.0 - y[i] * f);
    }
    return hinge;
  };
  EXPECT_LE(hinge_at(10.0), hinge_at(0.1) + 1e-6);
}

}  // namespace
}  // namespace cbir::svm
