#include "svm/smo_solver.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cbir::svm {
namespace {

la::Matrix MatrixFromRows(const std::vector<la::Vec>& rows) {
  la::Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) m.SetRow(r, rows[r]);
  return m;
}

TEST(SmoSolverTest, TwoPointAnalyticSolution) {
  // +1 at x=0, -1 at x=2, linear kernel, C large.
  // Max-margin solution: f(x) = 1 - x, alpha_1 = alpha_2 = 0.5,
  // dual objective = -0.5.
  const la::Matrix data = MatrixFromRows({{0.0}, {2.0}});
  SmoSolver solver(data, {1.0, -1.0}, {10.0, 10.0}, KernelParams::Linear());
  auto sol = solver.Solve();
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_TRUE(sol->converged);
  EXPECT_NEAR(sol->alpha[0], 0.5, 1e-3);
  EXPECT_NEAR(sol->alpha[1], 0.5, 1e-3);
  EXPECT_NEAR(sol->bias, 1.0, 1e-3);
  EXPECT_NEAR(sol->objective, -0.5, 1e-3);
}

TEST(SmoSolverTest, EqualityConstraintHolds) {
  Rng rng(17);
  const size_t n = 30;
  la::Matrix data(n, 3);
  std::vector<double> y(n), c(n, 5.0);
  for (size_t i = 0; i < n; ++i) {
    y[i] = (i % 2 == 0) ? 1.0 : -1.0;
    for (size_t d = 0; d < 3; ++d) {
      data.At(i, d) = rng.Gaussian() + (y[i] > 0 ? 1.0 : -1.0);
    }
  }
  SmoSolver solver(data, y, c, KernelParams::Rbf(0.5));
  auto sol = solver.Solve();
  ASSERT_TRUE(sol.ok());
  double constraint = 0.0;
  for (size_t i = 0; i < n; ++i) constraint += sol->alpha[i] * y[i];
  EXPECT_NEAR(constraint, 0.0, 1e-9);
}

TEST(SmoSolverTest, BoxConstraintsRespected) {
  Rng rng(19);
  const size_t n = 24;
  la::Matrix data(n, 2);
  std::vector<double> y(n), c(n);
  for (size_t i = 0; i < n; ++i) {
    y[i] = (i % 2 == 0) ? 1.0 : -1.0;
    c[i] = 0.1 + 0.4 * static_cast<double>(i % 5);  // heterogeneous bounds
    // Overlapping classes so bounds bind.
    data.At(i, 0) = rng.Gaussian() + 0.2 * y[i];
    data.At(i, 1) = rng.Gaussian();
  }
  SmoSolver solver(data, y, c, KernelParams::Rbf(1.0));
  auto sol = solver.Solve();
  ASSERT_TRUE(sol.ok());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_GE(sol->alpha[i], -1e-12);
    EXPECT_LE(sol->alpha[i], c[i] + 1e-12);
  }
}

// Verifies the KKT optimality conditions against the returned model:
//   alpha = 0      =>  y f(x) >= 1 - tol
//   0 < alpha < C  =>  |y f(x) - 1| <= tol
//   alpha = C      =>  y f(x) <= 1 + tol
void CheckKkt(const la::Matrix& data, const std::vector<double>& y,
              const std::vector<double>& c, const KernelParams& kernel,
              const SmoSolution& sol, double tol) {
  const size_t n = data.rows();
  for (size_t i = 0; i < n; ++i) {
    double f = sol.bias;
    for (size_t j = 0; j < n; ++j) {
      f += sol.alpha[j] * y[j] * EvalKernel(kernel, data.Row(j), data.Row(i));
    }
    const double margin = y[i] * f;
    if (sol.alpha[i] <= 1e-9) {
      EXPECT_GE(margin, 1.0 - tol) << "i=" << i;
    } else if (sol.alpha[i] >= c[i] - 1e-9) {
      EXPECT_LE(margin, 1.0 + tol) << "i=" << i;
    } else {
      EXPECT_NEAR(margin, 1.0, tol) << "i=" << i;
    }
  }
}

TEST(SmoSolverTest, KktConditionsOnSeparableData) {
  Rng rng(23);
  const size_t n = 40;
  la::Matrix data(n, 2);
  std::vector<double> y(n), c(n, 10.0);
  for (size_t i = 0; i < n; ++i) {
    y[i] = (i < n / 2) ? 1.0 : -1.0;
    data.At(i, 0) = rng.Gaussian() + 3.0 * y[i];
    data.At(i, 1) = rng.Gaussian();
  }
  const KernelParams kernel = KernelParams::Linear();
  SmoSolver solver(data, y, c, kernel);
  auto sol = solver.Solve();
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol->converged);
  CheckKkt(data, y, c, kernel, *sol, 0.02);
}

TEST(SmoSolverTest, KktConditionsOnOverlappingDataRbf) {
  Rng rng(29);
  const size_t n = 50;
  la::Matrix data(n, 3);
  std::vector<double> y(n), c(n, 2.0);
  for (size_t i = 0; i < n; ++i) {
    y[i] = (i % 2 == 0) ? 1.0 : -1.0;
    for (size_t d = 0; d < 3; ++d) {
      data.At(i, d) = rng.Gaussian() + 0.5 * y[i];
    }
  }
  const KernelParams kernel = KernelParams::Rbf(0.7);
  SmoSolver solver(data, y, c, kernel);
  auto sol = solver.Solve();
  ASSERT_TRUE(sol.ok());
  CheckKkt(data, y, c, kernel, *sol, 0.02);
}

TEST(SmoSolverTest, XorSolvableWithRbf) {
  const la::Matrix data =
      MatrixFromRows({{0, 0}, {1, 1}, {0, 1}, {1, 0}});
  const std::vector<double> y{1.0, 1.0, -1.0, -1.0};
  const KernelParams kernel = KernelParams::Rbf(2.0);
  SmoSolver solver(data, y, {50, 50, 50, 50}, kernel);
  auto sol = solver.Solve();
  ASSERT_TRUE(sol.ok());
  for (size_t i = 0; i < 4; ++i) {
    double f = sol->bias;
    for (size_t j = 0; j < 4; ++j) {
      f += sol->alpha[j] * y[j] *
           EvalKernel(kernel, data.Row(j), data.Row(i));
    }
    EXPECT_GT(y[i] * f, 0.0) << "XOR point " << i << " misclassified";
  }
}

TEST(SmoSolverTest, SingleClassDataConverges) {
  const la::Matrix data = MatrixFromRows({{0.0}, {1.0}, {2.0}});
  SmoSolver solver(data, {1.0, 1.0, 1.0}, {1, 1, 1}, KernelParams::Linear());
  auto sol = solver.Solve();
  ASSERT_TRUE(sol.ok());
  // With all labels equal, the equality constraint forces alpha = 0.
  for (double a : sol->alpha) EXPECT_NEAR(a, 0.0, 1e-12);
  EXPECT_TRUE(sol->converged);
}

TEST(SmoSolverTest, DuplicateContradictoryPointsSaturate) {
  // The same point labeled both ways: both alphas hit the box bound.
  const la::Matrix data = MatrixFromRows({{1.0}, {1.0}});
  SmoSolver solver(data, {1.0, -1.0}, {0.7, 0.7}, KernelParams::Linear());
  auto sol = solver.Solve();
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->alpha[0], 0.7, 1e-6);
  EXPECT_NEAR(sol->alpha[1], 0.7, 1e-6);
}

TEST(SmoSolverTest, PerSampleBoundLimitsInfluence) {
  // Same geometry, but one sample's C is tiny: its alpha must stay small.
  const la::Matrix data = MatrixFromRows({{0.0}, {0.1}, {2.0}});
  const std::vector<double> y{1.0, 1.0, -1.0};
  SmoSolver solver(data, y, {10.0, 0.01, 10.0}, KernelParams::Linear());
  auto sol = solver.Solve();
  ASSERT_TRUE(sol.ok());
  EXPECT_LE(sol->alpha[1], 0.01 + 1e-12);
}

TEST(SmoSolverTest, RejectsBadInputs) {
  const la::Matrix data = MatrixFromRows({{0.0}, {1.0}});
  {
    SmoSolver s(data, {1.0, 0.5}, {1, 1}, KernelParams::Linear());
    EXPECT_FALSE(s.Solve().ok());  // label not +-1
  }
  {
    SmoSolver s(data, {1.0, -1.0}, {1, 0}, KernelParams::Linear());
    EXPECT_FALSE(s.Solve().ok());  // non-positive C
  }
}

TEST(SmoSolverTest, ObjectiveMatchesDirectComputation) {
  Rng rng(31);
  const size_t n = 20;
  la::Matrix data(n, 2);
  std::vector<double> y(n), c(n, 1.5);
  for (size_t i = 0; i < n; ++i) {
    y[i] = (i % 2 == 0) ? 1.0 : -1.0;
    data.At(i, 0) = rng.Gaussian() + y[i];
    data.At(i, 1) = rng.Gaussian();
  }
  const KernelParams kernel = KernelParams::Rbf(0.4);
  SmoSolver solver(data, y, c, kernel);
  auto sol = solver.Solve();
  ASSERT_TRUE(sol.ok());
  // 0.5 a'Qa - e'a computed directly.
  double direct = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      direct += 0.5 * sol->alpha[i] * sol->alpha[j] * y[i] * y[j] *
                EvalKernel(kernel, data.Row(i), data.Row(j));
    }
    direct -= sol->alpha[i];
  }
  EXPECT_NEAR(sol->objective, direct, 1e-9);
}

TEST(SmoSolverTest, LargerCReducesTrainingError) {
  // Overlapping data: larger C must not increase the hinge loss.
  Rng rng(37);
  const size_t n = 40;
  la::Matrix data(n, 2);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    y[i] = (i % 2 == 0) ? 1.0 : -1.0;
    data.At(i, 0) = rng.Gaussian() + 0.6 * y[i];
    data.At(i, 1) = rng.Gaussian();
  }
  const KernelParams kernel = KernelParams::Rbf(0.8);
  auto hinge_at = [&](double c_value) {
    SmoSolver solver(data, y, std::vector<double>(n, c_value), kernel);
    auto sol = solver.Solve();
    EXPECT_TRUE(sol.ok());
    double hinge = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double f = sol->bias;
      for (size_t j = 0; j < n; ++j) {
        f += sol->alpha[j] * y[j] *
             EvalKernel(kernel, data.Row(j), data.Row(i));
      }
      hinge += std::max(0.0, 1.0 - y[i] * f);
    }
    return hinge;
  };
  EXPECT_LE(hinge_at(10.0), hinge_at(0.1) + 1e-6);
}

}  // namespace
}  // namespace cbir::svm
