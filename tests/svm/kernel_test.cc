#include "svm/kernel.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cbir::svm {
namespace {

TEST(KernelTest, LinearIsDotProduct) {
  const KernelParams k = KernelParams::Linear();
  EXPECT_DOUBLE_EQ(EvalKernel(k, {1, 2, 3}, {4, 5, 6}), 32.0);
}

TEST(KernelTest, RbfAtZeroDistanceIsOne) {
  const KernelParams k = KernelParams::Rbf(0.7);
  EXPECT_DOUBLE_EQ(EvalKernel(k, {1, 2}, {1, 2}), 1.0);
}

TEST(KernelTest, RbfDecaysWithDistance) {
  const KernelParams k = KernelParams::Rbf(1.0);
  const double near = EvalKernel(k, {0, 0}, {0.1, 0});
  const double far = EvalKernel(k, {0, 0}, {3, 0});
  EXPECT_GT(near, far);
  EXPECT_NEAR(far, std::exp(-9.0), 1e-12);
}

TEST(KernelTest, RbfGammaControlsWidth) {
  const double narrow = EvalKernel(KernelParams::Rbf(10.0), {0}, {1});
  const double wide = EvalKernel(KernelParams::Rbf(0.1), {0}, {1});
  EXPECT_LT(narrow, wide);
}

TEST(KernelTest, PolynomialMatchesClosedForm) {
  const KernelParams k = KernelParams::Polynomial(2.0, 1.0, 3);
  // (2*<a,b> + 1)^3 with <a,b> = 2 -> 125.
  EXPECT_DOUBLE_EQ(EvalKernel(k, {1, 1}, {1, 1}), 125.0);
}

TEST(KernelTest, PolynomialDegreeZeroIsOne) {
  const KernelParams k = KernelParams::Polynomial(2.0, 5.0, 0);
  EXPECT_DOUBLE_EQ(EvalKernel(k, {3}, {4}), 1.0);
}

TEST(KernelTest, EvalKernelRowMatchesEvalKernel) {
  la::Matrix rows(3, 2);
  rows.SetRow(0, {1, 2});
  rows.SetRow(1, {-1, 0.5});
  rows.SetRow(2, {0, 0});
  const la::Vec b{0.3, -0.7};
  for (const KernelParams& k :
       {KernelParams::Linear(), KernelParams::Rbf(0.5),
        KernelParams::Polynomial(1.0, 1.0, 2)}) {
    for (size_t i = 0; i < 3; ++i) {
      EXPECT_NEAR(EvalKernelRow(k, rows, i, b),
                  EvalKernel(k, rows.Row(i), b), 1e-12);
    }
  }
}

TEST(KernelTest, SymmetryProperty) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    la::Vec a(5), b(5);
    for (double& v : a) v = rng.Gaussian();
    for (double& v : b) v = rng.Gaussian();
    for (const KernelParams& k :
         {KernelParams::Linear(), KernelParams::Rbf(0.8),
          KernelParams::Polynomial(0.5, 1.0, 2)}) {
      EXPECT_NEAR(EvalKernel(k, a, b), EvalKernel(k, b, a), 1e-12);
    }
  }
}

// Mercer property: random Gram matrices must be positive semidefinite.
// Checked via z'Kz >= 0 for random z (sufficient statistical evidence).
class KernelPsdTest : public ::testing::TestWithParam<KernelParams> {};

TEST_P(KernelPsdTest, GramMatrixIsPsd) {
  Rng rng(11);
  const size_t n = 12, dims = 4;
  std::vector<la::Vec> xs(n, la::Vec(dims));
  for (auto& x : xs) {
    for (double& v : x) v = rng.Uniform(-2.0, 2.0);
  }
  la::Matrix gram(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      gram.At(i, j) = EvalKernel(GetParam(), xs[i], xs[j]);
    }
  }
  for (int trial = 0; trial < 50; ++trial) {
    la::Vec z(n);
    for (double& v : z) v = rng.Gaussian();
    const la::Vec gz = gram.Multiply(z);
    EXPECT_GE(la::Dot(z, gz), -1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelPsdTest,
    ::testing::Values(KernelParams::Linear(), KernelParams::Rbf(0.1),
                      KernelParams::Rbf(1.0), KernelParams::Rbf(10.0),
                      KernelParams::Polynomial(1.0, 1.0, 2),
                      KernelParams::Polynomial(0.5, 1.0, 4)));

TEST(DefaultGammaTest, MatchesLibsvmFormula) {
  la::Matrix data(2, 2);
  data.SetRow(0, {0.0, 0.0});
  data.SetRow(1, {2.0, 2.0});
  // All entries {0,0,2,2}: mean 1, var 1 -> gamma = 1/(2*1) = 0.5.
  EXPECT_NEAR(DefaultGamma(data), 0.5, 1e-12);
}

TEST(DefaultGammaTest, ConstantDataFallsBackToOneOverDims) {
  la::Matrix data(3, 4, 7.0);
  EXPECT_NEAR(DefaultGamma(data), 0.25, 1e-12);
}

TEST(DefaultGammaTest, NearZeroVarianceFallsBackToOneOverDims) {
  // Variance far below the 1e-12 guard but not exactly zero: the fallback
  // branch must engage instead of producing an astronomically large gamma.
  la::Matrix data(4, 5, 3.0);
  data.At(0, 0) = 3.0 + 1e-9;
  EXPECT_NEAR(DefaultGamma(data), 0.2, 1e-12);
}

TEST(DefaultGammaTest, EmptyMatrixReturnsOne) {
  EXPECT_DOUBLE_EQ(DefaultGamma(la::Matrix()), 1.0);
  EXPECT_DOUBLE_EQ(DefaultGamma(la::Matrix(0, 7)), 1.0);
}

TEST(DefaultGammaTest, LargeMagnitudeConstantDataStaysFinite) {
  // Catastrophic cancellation can produce a tiny negative variance here;
  // the guard must clamp it instead of returning a negative or inf gamma.
  la::Matrix data(3, 2, 1e154);
  const double gamma = DefaultGamma(data);
  EXPECT_TRUE(std::isfinite(gamma));
  EXPECT_GT(gamma, 0.0);
}

TEST(KernelTest, ToStringMentionsTypeAndParams) {
  EXPECT_EQ(KernelParams::Linear().ToString(), "linear");
  EXPECT_NE(KernelParams::Rbf(0.5).ToString().find("rbf"), std::string::npos);
  EXPECT_NE(KernelParams::Polynomial(1, 0, 3).ToString().find("degree=3"),
            std::string::npos);
}

}  // namespace
}  // namespace cbir::svm
