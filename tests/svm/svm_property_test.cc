// Property-style sweeps over the SMO solver: for every (C, gamma, n)
// configuration, the solution must satisfy the dual constraints and the KKT
// optimality conditions within the solver tolerance.
#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "svm/smo_solver.h"
#include "svm/trainer.h"
#include "util/rng.h"

namespace cbir::svm {
namespace {

struct ProblemConfig {
  double c;
  double gamma;
  size_t n;
  double class_gap;  // how separated the two Gaussians are
};

std::string ConfigName(const ::testing::TestParamInfo<ProblemConfig>& info) {
  const ProblemConfig& p = info.param;
  std::string name = "C" + std::to_string(static_cast<int>(p.c * 100)) +
                     "_g" + std::to_string(static_cast<int>(p.gamma * 100)) +
                     "_n" + std::to_string(p.n) + "_gap" +
                     std::to_string(static_cast<int>(p.class_gap * 10));
  return name;
}

class SmoPropertyTest : public ::testing::TestWithParam<ProblemConfig> {
 protected:
  void BuildProblem(uint64_t seed) {
    const ProblemConfig& p = GetParam();
    Rng rng(seed);
    data_ = la::Matrix(p.n, 3);
    y_.resize(p.n);
    c_.assign(p.n, p.c);
    for (size_t i = 0; i < p.n; ++i) {
      y_[i] = (i % 2 == 0) ? 1.0 : -1.0;
      for (size_t d = 0; d < 3; ++d) {
        data_.At(i, d) = rng.Gaussian() + 0.5 * p.class_gap * y_[i];
      }
    }
    kernel_ = KernelParams::Rbf(p.gamma);
  }

  double DecisionAt(const SmoSolution& sol, size_t i) const {
    double f = sol.bias;
    for (size_t j = 0; j < data_.rows(); ++j) {
      f += sol.alpha[j] * y_[j] *
           EvalKernel(kernel_, data_.Row(j), data_.Row(i));
    }
    return f;
  }

  la::Matrix data_;
  std::vector<double> y_;
  std::vector<double> c_;
  KernelParams kernel_;
};

TEST_P(SmoPropertyTest, DualFeasibility) {
  BuildProblem(101);
  SmoSolver solver(data_, y_, c_, kernel_);
  auto sol = solver.Solve();
  ASSERT_TRUE(sol.ok());
  double eq = 0.0;
  for (size_t i = 0; i < y_.size(); ++i) {
    EXPECT_GE(sol->alpha[i], -1e-12);
    EXPECT_LE(sol->alpha[i], c_[i] + 1e-12);
    eq += sol->alpha[i] * y_[i];
  }
  EXPECT_NEAR(eq, 0.0, 1e-9);
}

TEST_P(SmoPropertyTest, KktWithinTolerance) {
  BuildProblem(103);
  SmoSolver solver(data_, y_, c_, kernel_);
  auto sol = solver.Solve();
  ASSERT_TRUE(sol.ok());
  ASSERT_TRUE(sol->converged);
  const double tol = 0.02;
  for (size_t i = 0; i < y_.size(); ++i) {
    const double margin = y_[i] * DecisionAt(*sol, i);
    if (sol->alpha[i] <= 1e-9) {
      EXPECT_GE(margin, 1.0 - tol) << "i=" << i;
    } else if (sol->alpha[i] >= c_[i] - 1e-9) {
      EXPECT_LE(margin, 1.0 + tol) << "i=" << i;
    } else {
      EXPECT_NEAR(margin, 1.0, tol) << "i=" << i;
    }
  }
}

TEST_P(SmoPropertyTest, ObjectiveIsNonPositive) {
  // alpha = 0 is feasible with objective 0, so the optimum is <= 0.
  BuildProblem(107);
  SmoSolver solver(data_, y_, c_, kernel_);
  auto sol = solver.Solve();
  ASSERT_TRUE(sol.ok());
  EXPECT_LE(sol->objective, 1e-12);
}

TEST_P(SmoPropertyTest, DeterministicSolve) {
  BuildProblem(109);
  SmoSolver s1(data_, y_, c_, kernel_);
  SmoSolver s2(data_, y_, c_, kernel_);
  auto a = s1.Solve();
  auto b = s2.Solve();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->alpha, b->alpha);
  EXPECT_EQ(a->bias, b->bias);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SmoPropertyTest,
    ::testing::Values(
        ProblemConfig{0.1, 0.5, 16, 2.0},   //
        ProblemConfig{1.0, 0.5, 16, 2.0},   //
        ProblemConfig{10.0, 0.5, 16, 2.0},  //
        ProblemConfig{100.0, 0.5, 16, 2.0}, //
        ProblemConfig{1.0, 0.05, 32, 1.0},  //
        ProblemConfig{1.0, 2.0, 32, 1.0},   //
        ProblemConfig{10.0, 1.0, 48, 0.5},  // heavy overlap
        ProblemConfig{10.0, 1.0, 8, 4.0},   // tiny, clean
        ProblemConfig{0.5, 5.0, 40, 0.0}    // pure noise
        ),
    ConfigName);

// Property: the trainer's model agrees with a brute-force decision function
// built from the raw solution, across kernels.
class TrainerKernelTest : public ::testing::TestWithParam<KernelParams> {};

TEST_P(TrainerKernelTest, ModelMatchesRawSolution) {
  Rng rng(211);
  const size_t n = 20;
  la::Matrix data(n, 2);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    y[i] = (i % 2 == 0) ? 1.0 : -1.0;
    data.At(i, 0) = rng.Gaussian() + y[i];
    data.At(i, 1) = rng.Gaussian();
  }
  TrainOptions options;
  options.kernel = GetParam();
  options.c = 5.0;
  SvmTrainer trainer(options);
  auto out = trainer.Train(data, y);
  ASSERT_TRUE(out.ok());
  // Training decisions must be reproducible through the serialized SV form.
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(out->model.Decision(data.Row(i)), out->train_decisions[i],
                1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, TrainerKernelTest,
    ::testing::Values(KernelParams::Linear(), KernelParams::Rbf(0.25),
                      KernelParams::Rbf(4.0),
                      KernelParams::Polynomial(0.5, 1.0, 2),
                      KernelParams::Polynomial(1.0, 0.0, 3)));

}  // namespace
}  // namespace cbir::svm
