#include "svm/kernel_cache.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cbir::svm {
namespace {

la::Matrix RandomData(size_t n, size_t dims, uint64_t seed) {
  Rng rng(seed);
  la::Matrix data(n, dims);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < dims; ++c) data.At(r, c) = rng.Gaussian();
  }
  return data;
}

TEST(KernelCacheTest, RowsMatchDirectEvaluation) {
  const la::Matrix data = RandomData(10, 3, 1);
  const KernelParams k = KernelParams::Rbf(0.5);
  KernelCache cache(data, k);
  for (size_t i = 0; i < 10; ++i) {
    const auto& row = cache.GetRow(i);
    ASSERT_EQ(row.size(), 10u);
    for (size_t j = 0; j < 10; ++j) {
      EXPECT_NEAR(row[j], EvalKernel(k, data.Row(i), data.Row(j)), 1e-12);
    }
  }
}

TEST(KernelCacheTest, DiagPrecomputed) {
  const la::Matrix data = RandomData(6, 4, 2);
  const KernelParams k = KernelParams::Rbf(1.0);
  KernelCache cache(data, k);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(cache.Diag(i), 1.0, 1e-12);  // RBF diagonal is always 1
  }
  KernelCache linear(data, KernelParams::Linear());
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(linear.Diag(i), la::Dot(data.Row(i), data.Row(i)), 1e-12);
  }
}

TEST(KernelCacheTest, HitsAndMisses) {
  const la::Matrix data = RandomData(4, 2, 3);
  KernelCache cache(data, KernelParams::Linear());
  cache.GetRow(0);
  cache.GetRow(0);
  cache.GetRow(1);
  cache.GetRow(0);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(KernelCacheTest, EvictionKeepsResultsCorrect) {
  const la::Matrix data = RandomData(8, 3, 4);
  const KernelParams k = KernelParams::Rbf(0.3);
  KernelCache cache(data, k, /*max_rows=*/2);
  // Touch rows in a pattern that forces eviction, verifying values always.
  const size_t pattern[] = {0, 1, 2, 3, 0, 1, 7, 0};
  for (size_t i : pattern) {
    const auto& row = cache.GetRow(i);
    for (size_t j = 0; j < 8; ++j) {
      EXPECT_NEAR(row[j], EvalKernel(k, data.Row(i), data.Row(j)), 1e-12);
    }
  }
  EXPECT_GT(cache.misses(), 2u);  // eviction happened
}

TEST(KernelCacheTest, LruKeepsRecentRow) {
  const la::Matrix data = RandomData(4, 2, 5);
  KernelCache cache(data, KernelParams::Linear(), /*max_rows=*/2);
  cache.GetRow(0);  // miss
  cache.GetRow(1);  // miss
  cache.GetRow(0);  // hit (refreshes 0)
  cache.GetRow(2);  // miss, evicts 1
  cache.GetRow(0);  // must still be resident
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 3u);
}

TEST(KernelCacheDeathTest, OutOfRangeRow) {
  const la::Matrix data = RandomData(3, 2, 6);
  KernelCache cache(data, KernelParams::Linear());
  EXPECT_DEATH((void)cache.GetRow(3), "Check failed");
}

}  // namespace
}  // namespace cbir::svm
