#include "svm/kernel_cache.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cbir::svm {
namespace {

la::Matrix RandomData(size_t n, size_t dims, uint64_t seed) {
  Rng rng(seed);
  la::Matrix data(n, dims);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < dims; ++c) data.At(r, c) = rng.Gaussian();
  }
  return data;
}

TEST(KernelCacheTest, RowsMatchDirectEvaluation) {
  const la::Matrix data = RandomData(10, 3, 1);
  const KernelParams k = KernelParams::Rbf(0.5);
  KernelCache cache(data, k);
  for (size_t i = 0; i < 10; ++i) {
    const double* row = cache.GetRow(i);
    for (size_t j = 0; j < 10; ++j) {
      EXPECT_NEAR(row[j], EvalKernel(k, data.Row(i), data.Row(j)), 1e-12);
    }
  }
}

TEST(KernelCacheTest, DiagPrecomputed) {
  const la::Matrix data = RandomData(6, 4, 2);
  const KernelParams k = KernelParams::Rbf(1.0);
  KernelCache cache(data, k);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(cache.Diag(i), 1.0, 1e-12);  // RBF diagonal is always 1
  }
  KernelCache linear(data, KernelParams::Linear());
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(linear.Diag(i), la::Dot(data.Row(i), data.Row(i)), 1e-12);
  }
}

TEST(KernelCacheTest, HitsAndMisses) {
  const la::Matrix data = RandomData(4, 2, 3);
  KernelCache cache(data, KernelParams::Linear());
  cache.GetRow(0);
  cache.GetRow(0);
  cache.GetRow(1);
  cache.GetRow(0);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.stats().resident_rows, 2u);
  EXPECT_EQ(cache.stats().capacity_rows, 4u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_NEAR(cache.stats().hit_rate(), 0.5, 1e-12);
}

TEST(KernelCacheTest, EvictionKeepsResultsCorrect) {
  const la::Matrix data = RandomData(8, 3, 4);
  const KernelParams k = KernelParams::Rbf(0.3);
  KernelCache cache(data, k, /*max_rows=*/2);
  // Touch rows in a pattern that forces eviction, verifying values always.
  const size_t pattern[] = {0, 1, 2, 3, 0, 1, 7, 0};
  for (size_t i : pattern) {
    const double* row = cache.GetRow(i);
    for (size_t j = 0; j < 8; ++j) {
      EXPECT_NEAR(row[j], EvalKernel(k, data.Row(i), data.Row(j)), 1e-12);
    }
  }
  EXPECT_GT(cache.misses(), 2u);  // eviction happened
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_LE(cache.stats().resident_rows, 2u);
}

TEST(KernelCacheTest, LruKeepsRecentRow) {
  const la::Matrix data = RandomData(4, 2, 5);
  KernelCache cache(data, KernelParams::Linear(), /*max_rows=*/2);
  cache.GetRow(0);  // miss
  cache.GetRow(1);  // miss
  cache.GetRow(0);  // hit (refreshes 0)
  cache.GetRow(2);  // miss, evicts 1
  cache.GetRow(0);  // must still be resident
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 3u);
}

TEST(KernelCacheTest, GetRowsBothValidSimultaneously) {
  const la::Matrix data = RandomData(8, 3, 6);
  const KernelParams k = KernelParams::Rbf(0.4);
  // Tiny capacity: without pinning, fetching j would evict i's slot.
  KernelCache cache(data, k, /*max_rows=*/2);
  for (size_t i = 0; i < 8; ++i) {
    for (size_t j = 0; j < 8; ++j) {
      const double* ki = nullptr;
      const double* kj = nullptr;
      cache.GetRows(i, j, &ki, &kj);
      for (size_t t = 0; t < 8; ++t) {
        EXPECT_NEAR(ki[t], EvalKernel(k, data.Row(i), data.Row(t)), 1e-12)
            << "i=" << i << " j=" << j;
        EXPECT_NEAR(kj[t], EvalKernel(k, data.Row(j), data.Row(t)), 1e-12)
            << "i=" << i << " j=" << j;
      }
    }
  }
}

TEST(KernelCacheTest, GetRowsSameIndexAliases) {
  const la::Matrix data = RandomData(4, 2, 7);
  KernelCache cache(data, KernelParams::Linear(), /*max_rows=*/2);
  const double* ki = nullptr;
  const double* kj = nullptr;
  cache.GetRows(2, 2, &ki, &kj);
  EXPECT_EQ(ki, kj);
  EXPECT_NEAR(ki[2], la::Dot(data.Row(2), data.Row(2)), 1e-12);
}

TEST(KernelCacheTest, GetRowsMixedHitMissUnderTinyCapacity) {
  const la::Matrix data = RandomData(6, 2, 8);
  const KernelParams k = KernelParams::Linear();
  KernelCache cache(data, k, /*max_rows=*/2);
  const double* ki = nullptr;
  const double* kj = nullptr;
  cache.GetRows(0, 1, &ki, &kj);  // double miss fills both slots
  cache.GetRows(0, 2, &ki, &kj);  // 0 hits; 2 must evict 1, not pinned 0
  for (size_t t = 0; t < 6; ++t) {
    EXPECT_NEAR(ki[t], EvalKernel(k, data.Row(0), data.Row(t)), 1e-12);
    EXPECT_NEAR(kj[t], EvalKernel(k, data.Row(2), data.Row(t)), 1e-12);
  }
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(KernelCacheTest, CapacityClampedToAtLeastTwoRows) {
  const la::Matrix data = RandomData(5, 2, 9);
  const KernelParams k = KernelParams::Rbf(0.2);
  KernelCache cache(data, k, /*max_rows=*/1);
  EXPECT_EQ(cache.stats().capacity_rows, 2u);
  const double* ki = nullptr;
  const double* kj = nullptr;
  cache.GetRows(3, 4, &ki, &kj);
  EXPECT_NEAR(ki[4], EvalKernel(k, data.Row(3), data.Row(4)), 1e-12);
  EXPECT_NEAR(kj[3], EvalKernel(k, data.Row(4), data.Row(3)), 1e-12);
}

TEST(KernelCacheDeathTest, OutOfRangeRow) {
  const la::Matrix data = RandomData(3, 2, 6);
  KernelCache cache(data, KernelParams::Linear());
  EXPECT_DEATH((void)cache.GetRow(3), "Check failed");
}

}  // namespace
}  // namespace cbir::svm
