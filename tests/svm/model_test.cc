#include "svm/model.h"

#include <sstream>

#include <gtest/gtest.h>

#include "svm/trainer.h"
#include "util/rng.h"

namespace cbir::svm {
namespace {

SvmModel ToyModel() {
  la::Matrix sv(2, 2);
  sv.SetRow(0, {1.0, 0.0});
  sv.SetRow(1, {-1.0, 0.0});
  // f(x) = 0.5*K(sv0,x) - 0.5*K(sv1,x) + 0.1
  return SvmModel(KernelParams::Rbf(1.0), std::move(sv), {0.5, -0.5}, 0.1);
}

TEST(SvmModelTest, DecisionClosedForm) {
  const SvmModel m = ToyModel();
  // At the midpoint both kernels are equal: f = bias.
  EXPECT_NEAR(m.Decision({0.0, 0.0}), 0.1, 1e-12);
  // Near sv0 the positive coefficient dominates.
  EXPECT_GT(m.Decision({1.0, 0.0}), 0.1);
  EXPECT_LT(m.Decision({-1.0, 0.0}), 0.1);
}

TEST(SvmModelTest, PredictSign) {
  const SvmModel m = ToyModel();
  EXPECT_EQ(m.Predict({1.0, 0.0}), 1.0);
  EXPECT_EQ(m.Predict({-1.0, 0.0}), -1.0);
}

TEST(SvmModelTest, DecisionBatchMatchesScalar) {
  const SvmModel m = ToyModel();
  la::Matrix batch(3, 2);
  batch.SetRow(0, {0.5, 0.5});
  batch.SetRow(1, {-2.0, 1.0});
  batch.SetRow(2, {0.0, 0.0});
  const std::vector<double> scores = m.DecisionBatch(batch);
  ASSERT_EQ(scores.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(scores[i], m.Decision(batch.Row(i)), 1e-12);
  }
}

TEST(SvmModelTest, EmptyModelIsBiasOnly) {
  SvmModel m;
  EXPECT_TRUE(m.empty());
  EXPECT_DOUBLE_EQ(m.Decision({}), 0.0);
}

TEST(SvmModelTest, SaveLoadRoundTrip) {
  const SvmModel m = ToyModel();
  std::stringstream ss;
  m.Save(ss);
  auto loaded = SvmModel::Load(ss);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_support_vectors(), 2u);
  EXPECT_EQ(loaded->kernel().type, KernelType::kRbf);
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const la::Vec x{rng.Uniform(-3, 3), rng.Uniform(-3, 3)};
    EXPECT_NEAR(loaded->Decision(x), m.Decision(x), 1e-12);
  }
}

TEST(SvmModelTest, TrainedModelRoundTrip) {
  Rng rng(7);
  la::Matrix data(16, 2);
  std::vector<double> y(16);
  for (size_t i = 0; i < 16; ++i) {
    y[i] = (i % 2 == 0) ? 1.0 : -1.0;
    data.At(i, 0) = rng.Gaussian() + y[i];
    data.At(i, 1) = rng.Gaussian();
  }
  SvmTrainer trainer;
  auto out = trainer.Train(data, y);
  ASSERT_TRUE(out.ok());

  std::stringstream ss;
  out->model.Save(ss);
  auto loaded = SvmModel::Load(ss);
  ASSERT_TRUE(loaded.ok());
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(loaded->Decision(data.Row(i)),
                out->model.Decision(data.Row(i)), 1e-9);
  }
}

TEST(SvmModelTest, LoadRejectsBadHeader) {
  std::stringstream ss("not_a_model v1\n");
  EXPECT_FALSE(SvmModel::Load(ss).ok());
}

TEST(SvmModelTest, LoadRejectsUnknownKernel) {
  std::stringstream ss("svm_model v1\n9 1.0 0.0 3\n0 0\n0.0\n");
  auto r = SvmModel::Load(ss);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SvmModelTest, LoadRejectsTruncated) {
  std::stringstream ss("svm_model v1\n1 0.5 0.0 0\n2 2\n0.0\n0.5 1.0 2.0\n");
  EXPECT_FALSE(SvmModel::Load(ss).ok());  // second SV row missing
}

}  // namespace
}  // namespace cbir::svm
