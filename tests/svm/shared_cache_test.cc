// Tests for the external kernel-cache injection point: KernelCache
// Rebind/RebindRemapped semantics and SmoSolver solving through a shared,
// caller-owned cache (the mechanism the coupled-SVM solve chain and the
// cross-round session caches are built on).
#include <gtest/gtest.h>

#include <vector>

#include "svm/kernel_cache.h"
#include "svm/smo_solver.h"
#include "svm/trainer.h"
#include "util/rng.h"

namespace cbir::svm {
namespace {

la::Matrix RandomData(size_t n, size_t dims, uint64_t seed) {
  Rng rng(seed);
  la::Matrix data(n, dims);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < dims; ++c) data.At(r, c) = rng.Gaussian();
  }
  return data;
}

/// Two-class Gaussian problem with some overlap so the solver iterates.
void MakeProblem(size_t n, uint64_t seed, la::Matrix* data,
                 std::vector<double>* labels) {
  Rng rng(seed);
  *data = la::Matrix(n, 4);
  labels->resize(n);
  for (size_t i = 0; i < n; ++i) {
    const double y = (i % 2 == 0) ? 1.0 : -1.0;
    (*labels)[i] = y;
    for (size_t d = 0; d < 4; ++d) {
      data->At(i, d) = rng.Gaussian() + 0.5 * y;
    }
  }
}

void ExpectRowMatches(KernelCache& cache, const la::Matrix& data,
                      const KernelParams& k, size_t i) {
  const double* row = cache.GetRow(i);
  for (size_t j = 0; j < data.rows(); ++j) {
    EXPECT_NEAR(row[j], EvalKernel(k, data.Row(i), data.Row(j)), 1e-12)
        << "row " << i << " col " << j;
  }
}

TEST(KernelCacheRebindTest, SlabIsAllocatedLazily) {
  const la::Matrix data = RandomData(8, 3, 21);
  KernelCache cache(data, KernelParams::Rbf(0.5));
  const size_t before_first_row = cache.AllocatedBytes();
  cache.GetRow(0);
  // The slab (8 rows x 8 doubles here) only exists after the first fill.
  EXPECT_GE(cache.AllocatedBytes(),
            before_first_row + 8 * 8 * sizeof(double));
}

TEST(KernelCacheRebindTest, RebindInvalidatesRowsAndReusesAllocation) {
  const la::Matrix a = RandomData(6, 3, 1);
  const la::Matrix b = RandomData(6, 3, 2);
  const KernelParams k = KernelParams::Rbf(0.4);
  KernelCache cache(a, k);
  for (size_t i = 0; i < 6; ++i) cache.GetRow(i);
  EXPECT_EQ(cache.stats().resident_rows, 6u);
  const size_t bytes_before = cache.AllocatedBytes();

  cache.Rebind(b, k);
  EXPECT_EQ(cache.data(), &b);
  EXPECT_EQ(cache.stats().resident_rows, 0u);
  // Same-size problem: the slab allocation is reused, not reallocated.
  EXPECT_EQ(cache.AllocatedBytes(), bytes_before);
  for (size_t i = 0; i < 6; ++i) ExpectRowMatches(cache, b, k, i);
}

TEST(KernelCacheRebindTest, RemappedGrowthCarriesSurvivingRows) {
  // New problem = old problem's rows {0, 2, 3} (permuted) + two new rows.
  const la::Matrix a = RandomData(4, 3, 3);
  const KernelParams k = KernelParams::Rbf(0.3);
  KernelCache cache(a, k);
  for (size_t i = 0; i < 4; ++i) cache.GetRow(i);
  const size_t misses_before = cache.misses();

  la::Matrix b(5, 3);
  b.SetRow(0, a.Row(2));
  b.SetRow(1, a.Row(0));
  b.SetRow(2, RandomData(1, 3, 4).Row(0));
  b.SetRow(3, a.Row(3));
  b.SetRow(4, RandomData(1, 3, 5).Row(0));
  const std::vector<int32_t> new_to_old = {2, 0, -1, 3, -1};
  cache.RebindRemapped(b, k, new_to_old);

  EXPECT_EQ(cache.stats().resident_rows, 3u);
  // Carried rows are served as hits — no recomputation.
  EXPECT_EQ(cache.GetRow(0)[0], EvalKernel(k, b.Row(0), b.Row(0)));
  EXPECT_EQ(cache.misses(), misses_before);
  for (size_t i = 0; i < 5; ++i) ExpectRowMatches(cache, b, k, i);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(cache.Diag(i), EvalKernel(k, b.Row(i), b.Row(i)), 1e-12);
  }
}

TEST(KernelCacheRebindTest, RemappedShrinkDropsDepartedRows) {
  const la::Matrix a = RandomData(6, 2, 6);
  const KernelParams k = KernelParams::Linear();
  KernelCache cache(a, k);
  for (size_t i = 0; i < 6; ++i) cache.GetRow(i);

  la::Matrix b(3, 2);
  b.SetRow(0, a.Row(5));
  b.SetRow(1, a.Row(1));
  b.SetRow(2, a.Row(3));
  cache.RebindRemapped(b, k, {5, 1, 3});
  EXPECT_EQ(cache.stats().resident_rows, 3u);
  for (size_t i = 0; i < 3; ++i) ExpectRowMatches(cache, b, k, i);
}

TEST(KernelCacheRebindTest, RemappedWithDifferentParamsInvalidates) {
  const la::Matrix a = RandomData(4, 2, 7);
  KernelCache cache(a, KernelParams::Rbf(0.5));
  for (size_t i = 0; i < 4; ++i) cache.GetRow(i);

  const KernelParams k2 = KernelParams::Rbf(2.0);
  cache.RebindRemapped(a, k2, {0, 1, 2, 3});
  // Same data, different gamma: nothing may be carried.
  EXPECT_EQ(cache.stats().resident_rows, 0u);
  for (size_t i = 0; i < 4; ++i) ExpectRowMatches(cache, a, k2, i);
}

TEST(KernelCacheRebindTest, RemappedUnderTinyCapacityKeepsHottestRows) {
  const la::Matrix a = RandomData(6, 2, 8);
  const KernelParams k = KernelParams::Rbf(0.7);
  KernelCache cache(a, k, /*max_rows=*/2);
  cache.GetRow(0);
  cache.GetRow(1);  // resident: {0, 1}, 1 most recent
  cache.RebindRemapped(a, k, {0, 1, 2, 3, 4, 5}, /*max_rows=*/2);
  EXPECT_EQ(cache.stats().capacity_rows, 2u);
  EXPECT_LE(cache.stats().resident_rows, 2u);
  for (size_t i = 0; i < 6; ++i) ExpectRowMatches(cache, a, k, i);
}

TEST(SmoSharedCacheTest, SharedCacheSolveMatchesInternalExactly) {
  la::Matrix data;
  std::vector<double> labels;
  MakeProblem(40, 11, &data, &labels);
  const KernelParams kernel = KernelParams::Rbf(0.5);
  const std::vector<double> c(40, 5.0);

  SmoOptions internal_options;
  SmoSolver internal_solver(data, labels, c, kernel, internal_options);
  auto internal = internal_solver.Solve();
  ASSERT_TRUE(internal.ok()) << internal.status();

  KernelCache cache(data, kernel);
  SmoOptions shared_options;
  shared_options.shared_cache = &cache;
  SmoSolver shared_solver(data, labels, c, kernel, shared_options);
  auto shared = shared_solver.Solve();
  ASSERT_TRUE(shared.ok()) << shared.status();

  // Identical solver trajectory: a fresh shared cache serves exactly the
  // same rows an internal one would.
  EXPECT_EQ(shared->alpha, internal->alpha);
  EXPECT_EQ(shared->bias, internal->bias);
  EXPECT_EQ(shared->iterations, internal->iterations);
  EXPECT_EQ(shared->cache_stats.hits, internal->cache_stats.hits);
  EXPECT_EQ(shared->cache_stats.misses, internal->cache_stats.misses);
}

TEST(SmoSharedCacheTest, SecondSolveReusesRowsAndReportsDeltaStats) {
  la::Matrix data;
  std::vector<double> labels;
  MakeProblem(30, 12, &data, &labels);
  const KernelParams kernel = KernelParams::Rbf(0.8);
  const std::vector<double> c_low(30, 1.0);
  const std::vector<double> c_high(30, 10.0);

  KernelCache cache(data, kernel);
  SmoOptions options;
  options.shared_cache = &cache;

  SmoSolver first(data, labels, c_low, kernel, options);
  auto a = first.Solve();
  ASSERT_TRUE(a.ok());
  EXPECT_GT(a->cache_stats.misses, 0u);

  // Different C bounds, same kernel matrix: the second solve must not
  // recompute a single row (every miss already happened), and its reported
  // stats must be its own traffic only, not the cache's lifetime counters.
  SmoSolver second(data, labels, c_high, kernel, options);
  auto b = second.Solve();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->cache_stats.misses, 0u);
  EXPECT_GT(b->cache_stats.hits, 0u);
  EXPECT_EQ(cache.stats().misses, a->cache_stats.misses);

  // And the result still matches a cold solve of the same problem.
  SmoSolver cold(data, labels, c_high, kernel, SmoOptions{});
  auto cold_solution = cold.Solve();
  ASSERT_TRUE(cold_solution.ok());
  EXPECT_EQ(b->alpha, cold_solution->alpha);
  EXPECT_EQ(b->bias, cold_solution->bias);
}

TEST(SmoSharedCacheTest, LabelFlipsDoNotInvalidateSharedRows) {
  la::Matrix data;
  std::vector<double> labels;
  MakeProblem(24, 13, &data, &labels);
  const KernelParams kernel = KernelParams::Rbf(0.6);
  const std::vector<double> c(24, 4.0);

  KernelCache cache(data, kernel);
  SmoOptions options;
  options.shared_cache = &cache;
  SmoSolver first(data, labels, c, kernel, options);
  ASSERT_TRUE(first.Solve().ok());
  const size_t resident = cache.stats().resident_rows;

  // Flip a few labels (the coupled SVM's label-correction step): kernel
  // rows are label-independent, so nothing resident is invalidated — the
  // flipped solve can only miss on rows the first solve never materialized.
  std::vector<double> flipped = labels;
  flipped[3] = -flipped[3];
  flipped[8] = -flipped[8];
  SmoSolver second(data, flipped, c, kernel, options);
  auto b = second.Solve();
  ASSERT_TRUE(b.ok());
  EXPECT_LE(b->cache_stats.misses, 24u - resident);
  EXPECT_GT(b->cache_stats.hits, 0u);

  SmoSolver cold(data, flipped, c, kernel, SmoOptions{});
  auto cold_solution = cold.Solve();
  ASSERT_TRUE(cold_solution.ok());
  EXPECT_EQ(b->alpha, cold_solution->alpha);
}

TEST(SmoSharedCacheTest, EvictionPressureStaysCorrect) {
  la::Matrix data;
  std::vector<double> labels;
  MakeProblem(32, 14, &data, &labels);
  const KernelParams kernel = KernelParams::Rbf(0.5);
  const std::vector<double> c(32, 8.0);

  // cache_rows = 2 is the minimum budget: constant eviction churn.
  KernelCache tiny(data, kernel, /*max_rows=*/2);
  SmoOptions options;
  options.shared_cache = &tiny;
  SmoSolver solver(data, labels, c, kernel, options);
  auto squeezed = solver.Solve();
  ASSERT_TRUE(squeezed.ok());
  EXPECT_GT(squeezed->cache_stats.evictions, 0u);

  SmoSolver roomy(data, labels, c, kernel, SmoOptions{});
  auto reference = roomy.Solve();
  ASSERT_TRUE(reference.ok());
  ASSERT_EQ(squeezed->alpha.size(), reference->alpha.size());
  for (size_t i = 0; i < reference->alpha.size(); ++i) {
    EXPECT_NEAR(squeezed->alpha[i], reference->alpha[i], 1e-6);
  }
  EXPECT_NEAR(squeezed->bias, reference->bias, 1e-6);
}

TEST(SmoSharedCacheTest, RejectsForeignMatrixAndParams) {
  la::Matrix data;
  std::vector<double> labels;
  MakeProblem(10, 15, &data, &labels);
  const KernelParams kernel = KernelParams::Rbf(0.5);
  const std::vector<double> c(10, 1.0);

  // Equal contents, different object: still rejected (the contract is
  // pointer identity — rows are addressed by index into that matrix).
  la::Matrix copy = data;
  KernelCache foreign(copy, kernel);
  SmoOptions options;
  options.shared_cache = &foreign;
  SmoSolver solver(data, labels, c, kernel, options);
  EXPECT_EQ(solver.Solve().status().code(), StatusCode::kInvalidArgument);

  KernelCache wrong_params(data, KernelParams::Rbf(2.0));
  options.shared_cache = &wrong_params;
  SmoSolver solver2(data, labels, c, kernel, options);
  EXPECT_EQ(solver2.Solve().status().code(), StatusCode::kInvalidArgument);
}

TEST(SmoSharedCacheTest, TrainerThreadsSharedCacheThrough) {
  la::Matrix data;
  std::vector<double> labels;
  MakeProblem(20, 16, &data, &labels);
  const KernelParams kernel = KernelParams::Rbf(0.5);

  KernelCache cache(data, kernel);
  TrainOptions options;
  options.kernel = kernel;
  options.c = 3.0;
  options.smo.shared_cache = &cache;
  SvmTrainer trainer(options);
  auto first = trainer.Train(data, labels);
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = trainer.Train(data, labels);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->cache_stats.misses, 0u);
  EXPECT_EQ(second->alpha, first->alpha);
}

TEST(SmoSharedCacheTest, SolveAfterRemappedGrowthMatchesFresh) {
  // The cross-round pattern: solve on n samples, grow the set (prefix
  // carries over), remap the cache, solve again — must match a cold solve
  // of the grown problem within solver tolerance.
  la::Matrix small_data;
  std::vector<double> small_labels;
  MakeProblem(20, 17, &small_data, &small_labels);
  const KernelParams kernel = KernelParams::Rbf(0.5);

  KernelCache cache(small_data, kernel);
  SmoOptions options;
  options.shared_cache = &cache;
  SmoSolver first(small_data, small_labels,
                  std::vector<double>(20, 5.0), kernel, options);
  ASSERT_TRUE(first.Solve().ok());

  la::Matrix grown_data;
  std::vector<double> grown_labels;
  MakeProblem(30, 17, &grown_data, &grown_labels);  // same seed: same prefix
  for (size_t i = 0; i < 20; ++i) {
    for (size_t d = 0; d < 4; ++d) {
      ASSERT_EQ(grown_data.At(i, d), small_data.At(i, d));
    }
  }
  std::vector<int32_t> new_to_old(30, -1);
  for (int32_t i = 0; i < 20; ++i) new_to_old[i] = i;
  cache.RebindRemapped(grown_data, kernel, new_to_old);

  const size_t misses_before = cache.stats().misses;
  SmoSolver second(grown_data, grown_labels, std::vector<double>(30, 5.0),
                   kernel, options);
  auto remapped = second.Solve();
  ASSERT_TRUE(remapped.ok());
  // The carried 20-row block was served from the remap, so the solve missed
  // at most the 10 new rows.
  EXPECT_LE(cache.stats().misses - misses_before, 10u);

  SmoSolver cold(grown_data, grown_labels, std::vector<double>(30, 5.0),
                 kernel, SmoOptions{});
  auto reference = cold.Solve();
  ASSERT_TRUE(reference.ok());
  for (size_t i = 0; i < 30; ++i) {
    EXPECT_NEAR(remapped->alpha[i], reference->alpha[i], 1e-6);
  }
  EXPECT_NEAR(remapped->bias, reference->bias, 1e-6);
}

}  // namespace
}  // namespace cbir::svm
