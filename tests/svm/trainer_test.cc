#include "svm/trainer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cbir::svm {
namespace {

la::Matrix SeparableData(std::vector<double>* labels, size_t n,
                         uint64_t seed) {
  Rng rng(seed);
  la::Matrix data(n, 2);
  labels->resize(n);
  for (size_t i = 0; i < n; ++i) {
    (*labels)[i] = (i % 2 == 0) ? 1.0 : -1.0;
    data.At(i, 0) = rng.Gaussian() + 2.5 * (*labels)[i];
    data.At(i, 1) = rng.Gaussian();
  }
  return data;
}

TEST(TrainerTest, SeparableDataPerfectlyClassified) {
  std::vector<double> y;
  const la::Matrix data = SeparableData(&y, 30, 41);
  TrainOptions options;
  options.kernel = KernelParams::Linear();
  options.c = 10.0;
  SvmTrainer trainer(options);
  auto out = trainer.Train(data, y);
  ASSERT_TRUE(out.ok()) << out.status();
  for (size_t i = 0; i < data.rows(); ++i) {
    EXPECT_EQ(out->model.Predict(data.Row(i)), y[i]) << "sample " << i;
  }
}

TEST(TrainerTest, SlacksMatchDecisions) {
  std::vector<double> y;
  const la::Matrix data = SeparableData(&y, 20, 43);
  SvmTrainer trainer;
  auto out = trainer.Train(data, y);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->slacks.size(), 20u);
  for (size_t i = 0; i < 20; ++i) {
    const double expected =
        std::max(0.0, 1.0 - y[i] * out->train_decisions[i]);
    EXPECT_NEAR(out->slacks[i], expected, 1e-12);
    EXPECT_NEAR(out->train_decisions[i], out->model.Decision(data.Row(i)),
                1e-12);
  }
}

TEST(TrainerTest, SupportVectorsAreSubset) {
  std::vector<double> y;
  const la::Matrix data = SeparableData(&y, 40, 47);
  TrainOptions options;
  options.kernel = KernelParams::Linear();
  options.c = 100.0;
  SvmTrainer trainer(options);
  auto out = trainer.Train(data, y);
  ASSERT_TRUE(out.ok());
  // Widely separable data keeps only a few support vectors.
  EXPECT_LT(out->model.num_support_vectors(), 40u);
  EXPECT_GE(out->model.num_support_vectors(), 2u);
}

TEST(TrainerTest, WeightedTrainingLimitsLowCSamples) {
  // An intentionally mislabeled sample with a tiny C bound cannot dominate.
  la::Matrix data(5, 1);
  data.SetRow(0, {0.0});
  data.SetRow(1, {0.5});
  data.SetRow(2, {3.0});
  data.SetRow(3, {3.5});
  data.SetRow(4, {0.2});  // mislabeled negative in positive territory
  const std::vector<double> y{1, 1, -1, -1, -1};
  TrainOptions options;
  options.kernel = KernelParams::Linear();
  SvmTrainer trainer(options);
  auto out = trainer.TrainWeighted(data, y, {10, 10, 10, 10, 1e-3});
  ASSERT_TRUE(out.ok());
  // The mislabeled point has negligible influence: points near it still
  // classify positive.
  EXPECT_GT(out->model.Decision({0.3}), 0.0);
}

TEST(TrainerTest, InputValidation) {
  la::Matrix empty;
  SvmTrainer trainer;
  EXPECT_FALSE(trainer.Train(empty, {}).ok());

  la::Matrix data(2, 1);
  EXPECT_FALSE(trainer.Train(data, {1.0}).ok());           // label count
  EXPECT_FALSE(trainer.TrainWeighted(data, {1.0, -1.0}, {1.0}).ok());
}

TEST(TrainerTest, ConvergedFlagSet) {
  std::vector<double> y;
  const la::Matrix data = SeparableData(&y, 10, 53);
  SvmTrainer trainer;
  auto out = trainer.Train(data, y);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->converged);
  EXPECT_GT(out->iterations, 0);
}

TEST(TrainerDeathTest, NonPositiveC) {
  TrainOptions options;
  options.c = 0.0;
  EXPECT_DEATH(SvmTrainer{options}, "Check failed");
}

}  // namespace
}  // namespace cbir::svm
