// Quickstart: build a small synthetic corpus, collect a feedback log, run
// one query through all four relevance-feedback schemes and compare the
// precision of their top-10 results.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [--index=exact|signature]
//       [--signature_bits=N] [--candidate_factor=N]
#include <iostream>

#include "core/experiment.h"
#include "core/scheme_factory.h"
#include "logdb/simulated_user.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace {

constexpr const char* kHelp = R"(quickstart — one query through all four schemes

  --index=M             exact | signature (default exact)
  --signature_bits=N    signature width in bits (default 256)
  --candidate_factor=N  Hamming candidates per requested result (default 8)
  --index-seed=N        hyperplane seed (default 333427)
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace cbir;

  auto flags_or = Flags::Parse(argc - 1, argv + 1);
  if (!flags_or.ok()) {
    std::cerr << flags_or.status() << "\n" << kHelp;
    return 1;
  }
  const Flags& flags = flags_or.value();
  if (flags.GetBool("help", false)) {
    std::cout << kHelp;
    return 0;
  }
  std::vector<std::string> known = retrieval::IndexFlagNames();
  known.push_back("help");
  if (Status s = flags.RequireKnown(known); !s.ok()) {
    std::cerr << s << "\n" << kHelp;
    return 1;
  }
  auto index_options = retrieval::IndexOptionsFromFlags(flags);
  if (!index_options.ok()) {
    std::cerr << index_options.status() << "\n" << kHelp;
    return 1;
  }

  // 1. Build an image database: 5 categories x 30 synthetic images, with
  //    the paper's 36-dim visual features (color moments + edge direction
  //    histogram + wavelet texture) extracted and normalized, plus the
  //    retrieval index every corpus scan routes through.
  retrieval::DatabaseOptions db_options;
  db_options.corpus.num_categories = 5;
  db_options.corpus.images_per_category = 30;
  db_options.corpus.width = 64;
  db_options.corpus.height = 64;
  db_options.corpus.seed = 7;
  std::cout << "building corpus and extracting features...\n";
  retrieval::ImageDatabase db = retrieval::ImageDatabase::Build(db_options);
  db.BuildIndex(index_options.value());
  std::cout << "retrieval index: " << db.index()->name() << "\n";

  // 2. Collect a user-feedback log (paper Section 6.3): 40 sessions of 10
  //    judged images each, with 10% judgment noise.
  logdb::LogCollectionOptions log_options;
  log_options.num_sessions = 40;
  log_options.session_size = 10;
  log_options.user.noise_rate = 0.10;
  log_options.seed = 11;
  const logdb::LogStore store =
      logdb::CollectLogs(db.features(), db.categories(), log_options);
  const la::Matrix log_features =
      store.BuildMatrix(db.num_images()).ToDenseMatrix();
  std::cout << "collected " << store.num_sessions() << " log sessions ("
            << store.TotalJudgments() << " judgments)\n";

  // 3. Set up one query round: query image 3, top-10 Euclidean results
  //    judged against ground truth (the labeled set S_l).
  core::FeedbackContext ctx;
  ctx.db = &db;
  ctx.log_features = &log_features;
  ctx.query_id = 3;
  ctx.candidate_depth = 64;  // this demo reads the top-10 plus the judgments
  CBIR_CHECK_OK(ctx.Prepare());
  const auto initial = db.TopK(ctx.query_feature, 11);
  const int query_category = db.category(ctx.query_id);
  for (int id : initial) {
    if (id == ctx.query_id) continue;
    ctx.labeled_ids.push_back(id);
    ctx.labels.push_back(db.category(id) == query_category ? 1.0 : -1.0);
    if (ctx.labeled_ids.size() == 10) break;
  }
  std::cout << "query image " << ctx.query_id << " (category '"
            << db.category_name(query_category) << "'), " << ctx.labels.size()
            << " labeled results\n\n";

  // 4. Rank with each scheme and report precision of the top 10.
  const core::SchemeOptions scheme_options =
      core::MakeDefaultSchemeOptions(db, &log_features);
  for (const auto& scheme : core::MakePaperSchemes(scheme_options)) {
    const auto ranked = scheme->Rank(ctx);
    if (!ranked.ok()) {
      std::cout << scheme->name() << ": " << ranked.status().ToString()
                << "\n";
      continue;
    }
    int hits = 0;
    std::cout << scheme->name() << " top-10: ";
    for (int i = 0; i < 10; ++i) {
      const int id = ranked.value()[static_cast<size_t>(i)];
      const bool relevant = db.category(id) == query_category;
      hits += relevant ? 1 : 0;
      std::cout << id << (relevant ? "+" : "-") << " ";
    }
    std::cout << " => P@10 = " << FormatDouble(hits / 10.0, 2) << "\n";
  }

  std::cout << "\n('+' marks results from the query's category)\n";
  return 0;
}
