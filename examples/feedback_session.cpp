// Multi-round relevance feedback session: demonstrates how precision climbs
// across feedback rounds for the paper's LRF-CSVM versus classical RF-SVM,
// and surfaces the coupled SVM's diagnostics (rho annealing steps, label
// flips) after each round.
//
// Each round the simulated user judges the current top-20 unjudged results,
// which extends the labeled set for the next round — the standard iterative
// relevance-feedback protocol the paper describes in Section 2.
#include <algorithm>
#include <iostream>
#include <set>

#include "core/lrf_csvm_scheme.h"
#include "core/rf_svm_scheme.h"
#include "logdb/simulated_user.h"
#include "retrieval/evaluator.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace {

constexpr const char* kHelp =
    R"(feedback_session — multi-round LRF-CSVM vs RF-SVM session

  --index=M             exact | signature (default exact)
  --signature_bits=N    signature width in bits (default 256)
  --candidate_factor=N  Hamming candidates per requested result (default 8)
  --index-seed=N        hyperplane seed (default 333427)
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace cbir;

  auto flags_or = Flags::Parse(argc - 1, argv + 1);
  if (!flags_or.ok()) {
    std::cerr << flags_or.status() << "\n" << kHelp;
    return 1;
  }
  const Flags& flags = flags_or.value();
  if (flags.GetBool("help", false)) {
    std::cout << kHelp;
    return 0;
  }
  std::vector<std::string> known = retrieval::IndexFlagNames();
  known.push_back("help");
  if (Status s = flags.RequireKnown(known); !s.ok()) {
    std::cerr << s << "\n" << kHelp;
    return 1;
  }
  auto index_options = retrieval::IndexOptionsFromFlags(flags);
  if (!index_options.ok()) {
    std::cerr << index_options.status() << "\n" << kHelp;
    return 1;
  }

  retrieval::DatabaseOptions db_options;
  db_options.corpus.num_categories = 8;
  db_options.corpus.images_per_category = 40;
  db_options.corpus.width = 64;
  db_options.corpus.height = 64;
  db_options.corpus.seed = 21;
  std::cout << "building corpus (8 categories x 40 images)...\n";
  retrieval::ImageDatabase db = retrieval::ImageDatabase::Build(db_options);
  db.BuildIndex(index_options.value());
  std::cout << "retrieval index: " << db.index()->name() << "\n";

  logdb::LogCollectionOptions log_options;
  log_options.num_sessions = 60;
  log_options.session_size = 15;
  log_options.seed = 9;
  const logdb::LogStore store =
      logdb::CollectLogs(db.features(), db.categories(), log_options);
  const la::Matrix log_features =
      store.BuildMatrix(db.num_images()).ToDenseMatrix();

  const core::SchemeOptions scheme_options =
      core::MakeDefaultSchemeOptions(db, &log_features);
  const core::RfSvmScheme rf_svm(scheme_options);
  core::LrfCsvmOptions csvm_options;
  const core::LrfCsvmScheme lrf_csvm(scheme_options, csvm_options);

  // Pick a genuinely hard query: the one with the worst initial Euclidean
  // P@20 among the first 60 images (easy queries saturate at 1.0 in round
  // one and show nothing).
  int query_id = 0;
  double worst_p20 = 2.0;
  for (int candidate = 0; candidate < 60; ++candidate) {
    auto ranked = db.TopK(db.feature(candidate), 21);
    ranked.erase(std::remove(ranked.begin(), ranked.end(), candidate),
                 ranked.end());
    const double p20 = retrieval::PrecisionAtN(
        ranked, db.categories(), db.category(candidate), 20);
    if (p20 < worst_p20) {
      worst_p20 = p20;
      query_id = candidate;
    }
  }
  const int query_category = db.category(query_id);
  std::cout << "query image " << query_id << " (category '"
            << db.category_name(query_category)
            << "', initial Euclidean P@20 = " << FormatDouble(worst_p20, 2)
            << ")\n\n";

  // Run the two schemes through 4 feedback rounds each, independently.
  for (const bool use_csvm : {false, true}) {
    std::cout << (use_csvm ? "LRF-CSVM" : "RF-SVM") << " session:\n";

    core::FeedbackContext ctx;
    ctx.db = &db;
    ctx.log_features = &log_features;
    ctx.query_id = query_id;
    // 4 rounds x 20 judgments plus the P@20 reads.
    ctx.candidate_depth = 128;
    CBIR_CHECK_OK(ctx.Prepare());

    std::set<int> judged{query_id};
    // Round 0: the user judges the top-20 Euclidean results.
    std::vector<int> current = db.TopK(ctx.query_feature,
                                       ctx.candidate_depth);
    for (int round = 1; round <= 4; ++round) {
      int added = 0;
      for (int id : current) {
        if (judged.count(id) > 0) continue;
        judged.insert(id);
        ctx.labeled_ids.push_back(id);
        ctx.labels.push_back(db.category(id) == query_category ? 1.0 : -1.0);
        if (++added == 20) break;
      }

      Result<std::vector<int>> ranked =
          use_csvm ? lrf_csvm.Rank(ctx) : rf_svm.Rank(ctx);
      if (!ranked.ok()) {
        std::cout << "  round " << round << " failed: "
                  << ranked.status().ToString() << "\n";
        break;
      }
      current = ranked.value();
      const double p20 = retrieval::PrecisionAtN(current, db.categories(),
                                                 query_category, 20);
      std::cout << "  round " << round << ": labeled=" << ctx.labels.size()
                << "  P@20=" << FormatDouble(p20, 3);
      if (use_csvm) {
        auto model = lrf_csvm.TrainForContext(ctx);
        if (model.ok()) {
          std::cout << "  [csvm: " << model->diagnostics.outer_iterations
                    << " rho steps, " << model->diagnostics.total_flips
                    << " label flips]";
        }
      }
      std::cout << "\n";
    }
    std::cout << "\n";
  }

  std::cout << "Expected: both schemes improve across rounds; LRF-CSVM "
               "starts higher thanks to the log prior.\n";
  return 0;
}
