// Dataset gallery: renders contact sheets of the synthetic COREL stand-in,
// one per category, plus intermediate feature-pipeline visualizations
// (grayscale, Canny edge map) for a sample image. Outputs PPM/PGM files.
#include <iostream>

#include "features/canny.h"
#include "imaging/color.h"
#include "imaging/ppm_io.h"
#include "imaging/resize.h"
#include "imaging/synthetic.h"

int main() {
  using namespace cbir;
  using namespace cbir::imaging;

  SyntheticCorelOptions options;
  options.num_categories = 12;
  options.images_per_category = 100;
  options.width = 96;
  options.height = 96;
  options.seed = 42;
  const SyntheticCorel corpus(options);

  // Contact sheet: 12 categories x 8 samples.
  const int cell = 96;
  const int samples = 8;
  Image sheet(cell * samples, cell * options.num_categories,
              Rgb{255, 255, 255});
  for (int c = 0; c < options.num_categories; ++c) {
    for (int i = 0; i < samples; ++i) {
      Paste(&sheet, corpus.Generate(c, i * 11), i * cell, c * cell);
    }
    std::cout << "row " << c << ": " << corpus.CategoryName(c) << "\n";
  }
  CBIR_CHECK_OK(WritePpm(sheet, "gallery_categories.ppm"));
  std::cout << "wrote gallery_categories.ppm (" << sheet.width() << "x"
            << sheet.height() << ")\n";

  // Feature-pipeline visualization for one image.
  const Image sample = corpus.Generate(2, 5);
  CBIR_CHECK_OK(WritePpm(sample, "gallery_sample.ppm"));

  const GrayImage gray = ToGray(sample);
  CBIR_CHECK_OK(WritePgm(gray, "gallery_sample_gray.pgm"));

  const features::CannyResult canny = features::Canny(gray);
  CBIR_CHECK_OK(WritePgm(canny.edges, "gallery_sample_edges.pgm"));
  std::cout << "wrote gallery_sample.ppm, gallery_sample_gray.pgm, "
               "gallery_sample_edges.pgm (" << canny.edge_count
            << " edge pixels)\n";

  std::cout << "\nView the PPM/PGM files with any image viewer; the contact "
               "sheet shows the intra-category coherence and cross-category "
               "overlap the experiments rely on.\n";
  return 0;
}
