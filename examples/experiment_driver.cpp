// Configurable experiment driver: runs the paper's evaluation protocol with
// every knob exposed as a command-line flag, so new corpus / log / scheme
// configurations can be explored without recompiling.
//
//   ./experiment_driver --categories=20 --images=100 --sessions=150
//       --noise=0.1 --queries=200 --nprime=20 --rho=0.08 --csv=out.csv
//
// Run with --help for the full flag list.
#include <iostream>

#include "core/experiment.h"
#include "core/scheme_factory.h"
#include "logdb/simulated_user.h"
#include "util/csv_writer.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace {

constexpr const char* kHelp = R"(experiment_driver — paper evaluation with configurable knobs

Corpus:
  --categories=N     semantic categories (default 20)
  --images=N         images per category (default 100)
  --size=N           image raster size (default 96)
  --difficulty=X     appearance jitter scale (default 2.5)
  --corpus-seed=N    corpus seed (default 42)

Feedback log:
  --sessions=N       log sessions to collect (default 150)
  --session-size=N   judgments per session (default 20)
  --noise=X          judgment flip probability (default 0.1)
  --neg-weight=X     negative-mark weight in log vectors (default 0.25)
  --log-seed=N       log collection seed (default 7)

Evaluation:
  --queries=N        random queries (default 200)
  --labeled=N        judged initial results per query (default 20)
  --query-seed=N     query sampling seed (default 123)

LRF-CSVM:
  --nprime=N         unlabeled samples N' (default 20)
  --rho=X            final unlabeled weight (default 0.08)
  --delta=X          label-flip threshold (default 2.0)
  --selection=S      most-similar | max-min | boundary-closest | random

Index:
  --index=M          exact | signature (default exact; exact reproduces the
                     exhaustive scan bit-for-bit)
  --signature_bits=N signature width in bits (default 256)
  --candidate_factor=N  Hamming candidates per requested result (default 8)
  --candidate-depth=N   depth requested from an approximate index
                        (default: max scope + labeled + 1)
  --index-seed=N     hyperplane seed (default 333427)

Output:
  --csv=PATH         also write the precision series as CSV
)";

constexpr const char* kKnownFlags[] = {
    "categories", "images",      "size",      "difficulty", "corpus-seed",
    "sessions",   "session-size", "noise",    "neg-weight", "log-seed",
    "queries",    "labeled",     "query-seed", "nprime",    "rho",
    "delta",      "selection",   "candidate-depth", "csv",  "help",
};

cbir::core::SelectionStrategy ParseStrategy(const std::string& name) {
  using cbir::core::SelectionStrategy;
  if (name == "max-min") return SelectionStrategy::kMaxMin;
  if (name == "boundary-closest") return SelectionStrategy::kBoundaryClosest;
  if (name == "random") return SelectionStrategy::kRandom;
  return SelectionStrategy::kMostSimilar;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cbir;

  auto flags_or = Flags::Parse(argc - 1, argv + 1);
  if (!flags_or.ok()) {
    std::cerr << flags_or.status() << "\n" << kHelp;
    return 1;
  }
  const Flags& flags = flags_or.value();
  if (flags.GetBool("help", false)) {
    std::cout << kHelp;
    return 0;
  }
  std::vector<std::string> known{std::begin(kKnownFlags),
                                 std::end(kKnownFlags)};
  for (const std::string& name : retrieval::IndexFlagNames()) {
    known.push_back(name);
  }
  if (Status s = flags.RequireKnown(known); !s.ok()) {
    std::cerr << s << "\n" << kHelp;
    return 1;
  }

  // Read every flag before the (expensive) corpus build so a garbage value
  // aborts immediately instead of minutes in.
  retrieval::DatabaseOptions db_options;
  db_options.corpus.num_categories = flags.GetInt("categories", 20);
  db_options.corpus.images_per_category = flags.GetInt("images", 100);
  db_options.corpus.width = flags.GetInt("size", 96);
  db_options.corpus.height = db_options.corpus.width;
  db_options.corpus.difficulty = flags.GetDouble("difficulty", 2.5);
  db_options.corpus.seed =
      static_cast<uint64_t>(flags.GetInt("corpus-seed", 42));
  auto index_options_or = retrieval::IndexOptionsFromFlags(flags);
  if (!index_options_or.ok()) {
    std::cerr << index_options_or.status() << "\n" << kHelp;
    return 1;
  }
  const retrieval::IndexOptions index_options = index_options_or.value();

  logdb::LogCollectionOptions log_options;
  log_options.num_sessions = flags.GetInt("sessions", 150);
  log_options.session_size = flags.GetInt("session-size", 20);
  log_options.user.noise_rate = flags.GetDouble("noise", 0.10);
  log_options.seed = static_cast<uint64_t>(flags.GetInt("log-seed", 7));
  const double neg_weight = flags.GetDouble(
      "neg-weight", logdb::RelevanceMatrix::kRocchioNegativeWeight);

  core::LrfCsvmOptions csvm_options;
  csvm_options.n_prime = flags.GetInt("nprime", 20);
  csvm_options.csvm.rho = flags.GetDouble("rho", 0.08);
  csvm_options.csvm.delta = flags.GetDouble("delta", 2.0);
  csvm_options.selection =
      ParseStrategy(flags.GetString("selection", "most-similar"));

  core::ExperimentOptions exp_options;
  exp_options.num_queries = flags.GetInt("queries", 200);
  exp_options.num_labeled = flags.GetInt("labeled", 20);
  exp_options.seed = static_cast<uint64_t>(flags.GetInt("query-seed", 123));
  exp_options.candidate_depth = flags.GetInt("candidate-depth", 0);

  std::cerr << "building " << db_options.corpus.num_categories
            << "-category corpus ("
            << db_options.corpus.num_categories *
                   db_options.corpus.images_per_category
            << " images)..." << std::endl;
  retrieval::ImageDatabase db = retrieval::ImageDatabase::Build(db_options);
  db.BuildIndex(index_options);
  std::cerr << "index: " << db.index()->name();
  if (index_options.mode == retrieval::IndexMode::kSignature) {
    std::cerr << " (" << index_options.signature.bits << " bits, factor "
              << index_options.signature.candidate_factor << ")";
  }
  std::cerr << std::endl;

  const logdb::LogStore store =
      logdb::CollectLogs(db.features(), db.categories(), log_options);
  const la::Matrix log_features =
      store.BuildMatrix(db.num_images()).ToDenseMatrix(neg_weight);

  const core::SchemeOptions scheme_options =
      core::MakeDefaultSchemeOptions(db, &log_features);
  // Small corpora cannot fill the paper's 20..100 scopes; keep the ones a
  // ranking of num_images - 1 entries can satisfy.
  std::erase_if(exp_options.scopes,
                [&](int scope) { return scope >= db.num_images(); });
  if (exp_options.scopes.empty()) {
    exp_options.scopes = {std::min(10, db.num_images() - 1)};
  }

  std::cerr << "running " << exp_options.num_queries << " queries..."
            << std::endl;
  const std::vector<std::shared_ptr<core::FeedbackScheme>> schemes =
      core::MakePaperSchemes(scheme_options, csvm_options);
  const core::ExperimentResult result =
      core::RunExperiment(db, &log_features, schemes, exp_options);
  std::cout << core::FormatPaperTable(result);

  const retrieval::IndexStats index_stats = db.index()->stats();
  std::cerr << "index stats: queries=" << index_stats.queries
            << " rows_scanned=" << index_stats.rows_scanned
            << " signatures_scanned=" << index_stats.signatures_scanned
            << " candidates_reranked=" << index_stats.candidates_reranked
            << " recall_proxy=" << FormatDouble(index_stats.recall_proxy, 3)
            << std::endl;

  // Kernel-cache behaviour of the coupled-SVM solve chains, aggregated over
  // every query's training run (per-modality split: [0] = visual, [1] = log).
  for (const auto& scheme : schemes) {
    const auto* csvm = dynamic_cast<const core::LrfCsvmScheme*>(scheme.get());
    if (csvm == nullptr) continue;
    const core::CsvmDiagnostics diag = csvm->AggregatedDiagnostics();
    std::cerr << "csvm cache stats: smo_iters=" << diag.total_smo_iterations
              << " hits=" << diag.cache_stats.hits
              << " misses=" << diag.cache_stats.misses
              << " evictions=" << diag.cache_stats.evictions
              << " hit_rate=" << FormatDouble(diag.cache_stats.hit_rate(), 3);
    static constexpr const char* kModalityNames[] = {"visual", "log"};
    for (size_t k = 0; k < diag.modality_cache_stats.size(); ++k) {
      const svm::CacheStats& m = diag.modality_cache_stats[k];
      std::cerr << " | " << (k < 2 ? kModalityNames[k] : "modality")
                << " hits=" << m.hits << " misses=" << m.misses
                << " evictions=" << m.evictions
                << " hit_rate=" << FormatDouble(m.hit_rate(), 3);
    }
    std::cerr << std::endl;
  }

  const std::string csv_path = flags.GetString("csv", "");
  if (!csv_path.empty()) {
    CsvWriter csv([&] {
      std::vector<std::string> header{"scope"};
      for (const auto& s : result.schemes) header.push_back(s.name);
      return header;
    }());
    for (size_t i = 0; i < result.scopes.size(); ++i) {
      std::vector<double> row{static_cast<double>(result.scopes[i])};
      for (const auto& s : result.schemes) row.push_back(s.precision[i]);
      csv.AddNumericRow(row);
    }
    CBIR_CHECK_OK(csv.WriteToFile(csv_path));
    std::cerr << "series written to " << csv_path << std::endl;
  }
  return 0;
}
