// CBIR retrieval server: one serve::RetrievalService behind the api wire
// protocol on a TCP port — the paper's deployment story as an actual network
// service. Any number of remote clients open feedback sessions (by corpus
// image id or by raw query feature vector), judge results, and every
// completed session grows the feedback log the coupled SVM mines.
//
// The corpus/service flags mirror examples/load_driver.cpp, so a driver
// started with the same --synthetic-rows/--seed/--scheme/... replays
// sessions whose rankings are byte-identical to an in-process run:
//
//   ./example_cbir_server --port=7345 --synthetic-rows=20000 &
//   ./example_load_driver --remote=127.0.0.1:7345 --sessions=200
//
// SIGINT/SIGTERM shut the server down cleanly (all connection threads
// joined) and print the final service stats.
#include <algorithm>
#include <atomic>
#include <csignal>
#include <chrono>
#include <iostream>
#include <memory>
#include <thread>

#include "api/dispatcher.h"
#include "core/feedback_scheme.h"
#include "logdb/log_store.h"
#include "logdb/simulated_user.h"
#include "net/tcp_server.h"
#include "obs/exposition.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/process_stats.h"
#include "obs/slo.h"
#include "obs/structured_log.h"
#include "retrieval/synthetic_features.h"
#include "serve/retrieval_service.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace {

constexpr const char* kHelp =
    R"(cbir_server — TCP retrieval service over the api wire protocol

 transport
  --port=N              listen port (default 7345; 0 = OS-assigned, printed)
  --host=S              bind address (default 127.0.0.1; 0.0.0.0 = public)
  --idle-timeout-ms=N   reap connections silent for N ms (default 0 = never)
  --drain-timeout-ms=N  shutdown grace for in-flight requests (default 1000)

 fault tolerance
  --wal=PATH            durable feedback log: snapshot at PATH, write-ahead
                        log at PATH.wal. Every acknowledged session survives
                        kill -9; on boot the committed WAL prefix is replayed
                        (torn tail truncated) and the recovered count printed
  --max-inflight=N      admission cap: shed requests over N concurrently
                        in flight with kUnavailable (default 0 = unbounded)

 observability
  --metrics-port=N      plaintext metrics-and-debug listener (curl or nc the
                        port; 0 = OS-assigned, printed). Omit to disable.
                        Endpoints: /metrics (Prometheus exposition, also the
                        default for a path-less peer), /healthz (200 while
                        serving, 503 while draining), /statusz (uptime,
                        build, flags, sessions, SLO state), /flightz (flight
                        recorder dump), /slowz (recent slow-request trees)
  --slow-request-ms=N   dump the per-stage span tree of any request whose
                        server-side time reaches N ms (default 0 = off);
                        also the flight recorder's always-capture threshold
  --flight-capacity=N   flight recorder ring size, records (default 256;
                        0 disables the recorder)
  --flight-sample=N     capture 1 of every N healthy requests (default 64;
                        errors/sheds/slow requests are always captured)
  --slo-query-p99-ms=F  latency objective: p99 of request latency stays
                        under F ms (default 0 = no latency objective)
  --slo-error-ratio=F   error objective: at most this fraction of responses
                        non-OK (default 0 = no error objective). Breaches
                        set cbir_slo_breach and emit event=slo_breach;
                        windowed p99s are tracked even with no objectives
  --log-interval=F      per-event rate limit of the structured connection
                        log, seconds (default 1.0; suppressed events are
                        counted and reported on the next line through)

 corpus (must match the driver's for byte-identical rankings)
  --synthetic-rows=N    clustered 36-dim feature corpus (default 20000)
  --categories=N --images-per-category=N
                        render a real synthetic-Corel corpus instead (slow)
  --seed=N              master seed (default 17)

 service (see load_driver)
  --scheme=S            Euclidean | RF-SVM | LRF-2SVMs | LRF-CSVM
                        (default RF-SVM)
  --k=N                 default results per response (default 20)
  --rounds=N --judgments=N
                        expected session shape, used for the --depth default
                        (default 2 x 10)
  --depth=N             session ranking depth (0 = auto: k + rounds*judgments + 1)
  --noise=F             pre-collected log judgment noise (default 0.1)
  --max-sessions=N --ttl=F --cache-capacity=N --log-sessions=N
  --first-session-id=N  first session id this server hands out (default 1).
                        Give each shard behind a router a disjoint range
                        (e.g. 1, 1000001, 2000001) so ids never collide)

 index (see quickstart): --index=exact|signature (default signature),
  --signature_bits, --candidate_factor, --index-seed
)";

using namespace cbir;

volatile std::sig_atomic_t g_stop = 0;

void HandleStopSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = Flags::Parse(argc - 1, argv + 1);
  if (!flags_or.ok()) {
    std::cerr << flags_or.status() << "\n" << kHelp;
    return 1;
  }
  const Flags& flags = flags_or.value();
  if (flags.GetBool("help", false)) {
    std::cout << kHelp;
    return 0;
  }
  std::vector<std::string> known = retrieval::IndexFlagNames();
  for (const char* name :
       {"help", "port", "host", "idle-timeout-ms", "drain-timeout-ms", "wal",
        "max-inflight", "metrics-port", "slow-request-ms", "log-interval",
        "flight-capacity", "flight-sample", "slo-query-p99-ms",
        "slo-error-ratio",
        "synthetic-rows", "categories", "images-per-category",
        "seed", "scheme", "k", "rounds", "judgments", "depth", "noise",
        "max-sessions", "ttl", "cache-capacity", "log-sessions",
        "first-session-id"}) {
    known.push_back(name);
  }
  if (Status s = flags.RequireKnown(known); !s.ok()) {
    std::cerr << s << "\n" << kHelp;
    return 1;
  }

  // Structured timestamped key=value event log (connection lifecycle, WAL
  // events). Connection events share one per-event rate limit so a storm is
  // bounded; WAL events bypass it (LogAlways) — they are rare and must land.
  obs::StructuredLog slog(&std::cout, flags.GetDouble("log-interval", 1.0));

  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 17));
  const int k = flags.GetInt("k", 20);
  const int rounds = flags.GetInt("rounds", 2);
  const int judgments = flags.GetInt("judgments", 10);
  const double noise = flags.GetDouble("noise", 0.1);

  auto index_options = retrieval::IndexOptionsFromFlags(flags);
  if (!index_options.ok()) {
    std::cerr << index_options.status() << "\n" << kHelp;
    return 1;
  }
  if (!flags.Has("index")) {
    index_options->mode = retrieval::IndexMode::kSignature;
  }

  // ---- serving data, mirroring load_driver's construction exactly --------
  retrieval::ImageDatabase db = [&] {
    if (flags.Has("categories") || flags.Has("images-per-category")) {
      retrieval::DatabaseOptions db_options;
      db_options.corpus.num_categories = flags.GetInt("categories", 8);
      db_options.corpus.images_per_category =
          flags.GetInt("images-per-category", 40);
      db_options.corpus.width = 64;
      db_options.corpus.height = 64;
      db_options.corpus.seed = 21;
      std::cout << "rendering corpus ("
                << db_options.corpus.num_categories << " x "
                << db_options.corpus.images_per_category << " images)...\n";
      return retrieval::ImageDatabase::Build(db_options);
    }
    const int rows = flags.GetInt("synthetic-rows", 20000);
    std::cout << "building synthetic clustered corpus (" << rows
              << " rows)...\n";
    return retrieval::ClusteredDatabase(rows, seed);
  }();
  db.BuildIndex(index_options.value());

  logdb::LogCollectionOptions log_options;
  log_options.num_sessions = flags.GetInt("log-sessions", 150);
  log_options.session_size = 20;
  log_options.user.noise_rate = noise;
  log_options.seed = seed + 1;
  logdb::LogStore store;
  const std::string wal_path = flags.GetString("wal", "");
  if (wal_path.empty()) {
    store = logdb::CollectLogs(db.features(), db.categories(), log_options);
  } else {
    // Durable mode: the feedback log lives on disk and outlives the process.
    // A fresh store (first boot) is seeded with the simulated pre-collected
    // log and compacted so the baseline is in the snapshot, not the WAL.
    logdb::WalRecoveryStats recovery;
    auto store_or =
        logdb::LogStore::OpenDurable(wal_path, wal_path + ".wal", &recovery);
    if (!store_or.ok()) {
      std::cerr << store_or.status() << "\n";
      return 1;
    }
    store = std::move(store_or).value();
    if (store.num_sessions() == 0) {
      logdb::LogStore seeded =
          logdb::CollectLogs(db.features(), db.categories(), log_options);
      for (const logdb::LogSession& session : seeded.sessions()) {
        store.Append(session);
      }
      if (Status s = store.Compact(); !s.ok()) {
        std::cerr << "wal: seed compaction failed: " << s << "\n";
        return 1;
      }
      slog.LogAlways("wal_compacted",
                     {{"reason", "seed"},
                      {"sessions", std::to_string(store.num_sessions())}});
    }
    // One stable line the chaos-smoke CI job greps after a kill -9 restart.
    if (recovery.torn_reason.empty()) {
      slog.LogAlways(
          "wal_recovered",
          {{"sessions", std::to_string(store.num_sessions())},
           {"replayed_from_wal", std::to_string(recovery.sessions)},
           {"torn_bytes", std::to_string(recovery.torn_bytes)}});
    } else {
      slog.LogAlways(
          "wal_recovered",
          {{"sessions", std::to_string(store.num_sessions())},
           {"replayed_from_wal", std::to_string(recovery.sessions)},
           {"torn_bytes", std::to_string(recovery.torn_bytes)},
           {"torn_reason", "\"" + recovery.torn_reason + "\""}});
    }
  }
  const la::Matrix log_features =
      store.BuildMatrix(db.num_images()).ToDenseMatrix();

  serve::ServiceOptions service_options;
  service_options.scheme = flags.GetString("scheme", "RF-SVM");
  service_options.default_k = k;
  service_options.candidate_depth =
      flags.GetInt("depth", 0) > 0 ? flags.GetInt("depth", 0)
                                   : k + rounds * judgments + 1;
  service_options.sessions.max_sessions =
      static_cast<size_t>(flags.GetInt("max-sessions", 4096));
  service_options.sessions.ttl_seconds = flags.GetDouble("ttl", 0.0);
  service_options.cache.capacity =
      static_cast<size_t>(flags.GetInt("cache-capacity", 4096));
  service_options.max_inflight =
      static_cast<size_t>(flags.GetInt("max-inflight", 0));
  service_options.first_session_id =
      static_cast<uint64_t>(flags.GetInt("first-session-id", 1));

  auto service_or = serve::RetrievalService::Create(
      &db, &log_features, &store,
      core::MakeDefaultSchemeOptions(db, &log_features), service_options);
  if (!service_or.ok()) {
    std::cerr << service_or.status() << "\n" << kHelp;
    return 1;
  }
  api::Dispatcher dispatcher(service_or.value().get());

  // Pull-style gauges: every Snapshot() (wire MetricsResponse or a
  // --metrics-port scrape) refreshes these from the live service first.
  obs::MetricsRegistry::Default().SetHelp(
      "cbir_process_rss_bytes", "Resident set size from /proc/self/statm.");
  obs::MetricsRegistry::Default().SetHelp(
      "cbir_process_cpu_seconds",
      "Whole seconds of user+system CPU from /proc/self/stat.");
  obs::MetricsRegistry::Default().OnGather(
      [service = service_or.value().get(), store_ptr = &store] {
        obs::MetricsRegistry& r = obs::MetricsRegistry::Default();
        const serve::ServiceStats s = service->stats();
        r.GetGauge("cbir_serve_active_sessions")
            ->Set(static_cast<int64_t>(s.active_sessions));
        r.GetGauge("cbir_serve_session_kernel_cache_bytes")
            ->Set(static_cast<int64_t>(s.session_kernel_cache_bytes));
        r.GetGauge("cbir_serve_uptime_seconds")
            ->Set(static_cast<int64_t>(s.elapsed_seconds));
        r.GetGauge("cbir_serve_cache_hit_rate_permille")
            ->Set(static_cast<int64_t>(s.cache_hit_rate * 1000.0));
        r.GetGauge("cbir_logdb_sessions")
            ->Set(static_cast<int64_t>(store_ptr->num_sessions()));
        const obs::ProcessStats p = obs::ReadProcessStats();
        r.GetGauge("cbir_process_rss_bytes")->Set(p.rss_bytes);
        r.GetGauge("cbir_process_cpu_seconds")
            ->Set(static_cast<int64_t>(p.cpu_seconds));
      });

  // Flight recorder: every completed request (decode errors included) is
  // offered; errors/sheds/slow always captured, healthy traffic sampled.
  std::unique_ptr<obs::FlightRecorder> flight;
  if (flags.GetInt("flight-capacity", 256) > 0) {
    obs::FlightRecorderOptions flight_options;
    flight_options.capacity =
        static_cast<size_t>(flags.GetInt("flight-capacity", 256));
    flight_options.sample_every =
        static_cast<uint64_t>(std::max(0, flags.GetInt("flight-sample", 64)));
    flight_options.slow_threshold_ms = flags.GetInt("slow-request-ms", 0);
    flight = std::make_unique<obs::FlightRecorder>(flight_options);
  }

  net::TcpServerOptions server_options;
  server_options.host = flags.GetString("host", "127.0.0.1");
  server_options.port = flags.GetInt("port", 7345);
  server_options.idle_timeout_ms = flags.GetInt("idle-timeout-ms", 0);
  server_options.drain_timeout_ms = flags.GetInt("drain-timeout-ms", 1000);
  server_options.slow_request_ms = flags.GetInt("slow-request-ms", 0);
  server_options.flight_recorder = flight.get();
  server_options.connection_observer = [&slog](const char* event,
                                               uint64_t connection_id) {
    slog.Log(std::string("conn_") + event,
             {{"id", std::to_string(connection_id)}});
  };
  net::TcpServer server(&dispatcher, server_options);
  if (Status s = server.Start(); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  // Windowed SLO tracking over the net layer's since-boot series. Always on
  // (so /statusz shows windowed p99s even without objectives); breaches
  // alert through the structured log, rate-limited per event.
  obs::SloOptions slo_options;
  slo_options.query_p99_ms = flags.GetDouble("slo-query-p99-ms", 0.0);
  slo_options.error_ratio = flags.GetDouble("slo-error-ratio", 0.0);
  obs::SloTracker slo_tracker(&obs::MetricsRegistry::Default(), slo_options,
                              &slog);
  slo_tracker.Start();

  const Stopwatch uptime;
  std::atomic<bool> draining{false};
  std::unique_ptr<obs::ExpositionServer> metrics_server;
  if (flags.Has("metrics-port")) {
    metrics_server = std::make_unique<obs::ExpositionServer>(
        &obs::MetricsRegistry::Default(), server_options.host,
        flags.GetInt("metrics-port", 0));
    metrics_server->SetStatusHandler("/healthz", [&draining] {
      obs::ExpositionServer::StatusResult result;
      if (draining.load(std::memory_order_acquire)) {
        result.code = 503;
        result.body = "draining\n";
      } else {
        result.body = "ok\n";
      }
      return result;
    });
    metrics_server->SetHandler(
        "/statusz",
        [&flags, &server, &slo_tracker, &uptime, &flight,
         service = service_or.value().get()] {
          std::string out = "cbir_server statusz\n";
          out += "uptime_seconds: " +
                 std::to_string(static_cast<int64_t>(
                     uptime.ElapsedSeconds())) + "\n";
          out += std::string("build: ") + __VERSION__ + ", C++" +
                 std::to_string(__cplusplus / 100 % 100) + ", " + __DATE__ +
                 "\n";
          out += "flags:";
          for (const std::string& key : flags.Keys()) {
            out += " --" + key + "=" + flags.GetString(key, "");
          }
          out += "\n";
          const serve::ServiceStats s = service->stats();
          out += "active_sessions: " + std::to_string(s.active_sessions) +
                 "\n";
          out += "requests: " + std::to_string(s.requests) +
                 " (shed_overload=" +
                 std::to_string(s.requests_shed_overload) +
                 " shed_deadline=" +
                 std::to_string(s.requests_shed_deadline) + ")\n";
          if (flight != nullptr) {
            out += "flight_recorder: seen=" + std::to_string(flight->seen()) +
                   " captured=" + std::to_string(flight->captured()) +
                   " errors=" + std::to_string(flight->captured_errors()) +
                   "\n";
          }
          const net::TcpServerStats n = server.stats();
          out += "connections: accepted=" +
                 std::to_string(n.connections_accepted) +
                 " closed=" + std::to_string(n.connections_closed) +
                 " decode_errors=" + std::to_string(n.decode_errors) + "\n";
          out += slo_tracker.FormatState();
          return out;
        });
    metrics_server->SetHandler("/flightz", [&flight] {
      return flight != nullptr ? flight->Dump()
                               : std::string("flight recorder disabled\n");
    });
    metrics_server->SetHandler("/slowz", [&server] {
      const std::vector<std::string> recent = server.slow_log().Recent();
      if (recent.empty()) return std::string("no slow requests logged\n");
      std::string out;
      for (const std::string& entry : recent) out += entry + "\n";
      return out;
    });
    if (Status s = metrics_server->Start(); !s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
  }

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  std::cout << "serving " << db.num_images()
            << " images (index=" << db.index()->name()
            << ", scheme=" << service_options.scheme
            << ", depth=" << service_options.candidate_depth << ")\n"
            << "listening on " << server_options.host << ":" << server.port()
            << "\n";
  if (metrics_server != nullptr) {
    std::cout << "metrics listening on " << server_options.host << ":"
              << metrics_server->port() << "\n";
  }
  std::cout << std::flush;

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::cout << "shutting down...\n";
  draining.store(true, std::memory_order_release);
  server.Stop();
  if (metrics_server != nullptr) metrics_server->Stop();
  slo_tracker.Stop();
  if (flight != nullptr) {
    // The black box survives the crash-adjacent exits too: SIGTERM lands
    // here through g_stop, and the dump goes out before stats.
    std::cout << flight->Dump() << std::flush;
  }
  if (store.durable()) {
    // Fold the WAL into the snapshot on a clean exit; a kill -9 skips this
    // and the next boot replays the WAL instead.
    if (Status s = store.Compact(); !s.ok()) {
      std::cerr << "wal: final compaction failed: " << s << "\n";
    } else {
      slog.LogAlways("wal_compacted",
                     {{"reason", "shutdown"},
                      {"sessions", std::to_string(store.num_sessions())}});
    }
  }
  const net::TcpServerStats net_stats = server.stats();
  std::cout << serve::FormatServiceStats(service_or.value()->stats()) << "\n"
            << "connections accepted " << net_stats.connections_accepted
            << ", requests served " << net_stats.requests_served
            << ", decode errors " << net_stats.decode_errors
            << ", idle reaped " << net_stats.connections_reaped_idle << "\n"
            << "feedback log " << store.num_sessions() << " sessions ("
            << store.TotalJudgments() << " judgments)\n";
  return 0;
}
