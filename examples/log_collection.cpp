// Log collection walkthrough: replays the paper's Section 6.3 protocol,
// persists the log store to disk, reloads it and inspects the relevance
// matrix — the exact artifact the log-based schemes consume.
#include <iostream>

#include "logdb/log_store.h"
#include "logdb/simulated_user.h"
#include "retrieval/image_database.h"
#include "util/string_util.h"

int main() {
  using namespace cbir;

  retrieval::DatabaseOptions db_options;
  db_options.corpus.num_categories = 6;
  db_options.corpus.images_per_category = 25;
  db_options.corpus.width = 64;
  db_options.corpus.height = 64;
  db_options.corpus.seed = 33;
  std::cout << "building corpus...\n";
  const retrieval::ImageDatabase db = retrieval::ImageDatabase::Build(
      db_options);

  // Collect logs exactly as the paper describes: each session = one user,
  // one query, top-20 returned images judged relevant/irrelevant.
  logdb::LogCollectionOptions options;
  options.num_sessions = 50;
  options.session_size = 20;
  options.user.noise_rate = 0.10;
  options.seed = 99;
  const logdb::LogStore collected =
      logdb::CollectLogs(db.features(), db.categories(), options);

  const std::string path = "example_feedback.log";
  CBIR_CHECK_OK(collected.SaveToFile(path));
  std::cout << "saved " << collected.num_sessions() << " sessions ("
            << collected.TotalJudgments() << " judgments) to " << path
            << "\n";

  // Reload and rebuild the relevance matrix R.
  auto loaded = logdb::LogStore::LoadFromFile(path);
  CBIR_CHECK(loaded.ok()) << loaded.status();
  const logdb::RelevanceMatrix matrix =
      loaded->BuildMatrix(db.num_images());

  std::cout << "\nrelevance matrix R: " << matrix.num_sessions()
            << " sessions x " << matrix.num_images() << " images\n";
  std::cout << "  marks: " << matrix.PositiveCount() << " positive, "
            << matrix.NegativeCount() << " negative\n";
  std::cout << "  coverage: " << matrix.CoveredImages() << "/"
            << matrix.num_images() << " images have at least one mark\n";

  // Show one session and one image's log vector.
  const logdb::LogSession& first = loaded->sessions().front();
  std::cout << "\nfirst session (query image " << first.query_image_id
            << ", category '"
            << db.category_name(db.category(first.query_image_id))
            << "'):\n  ";
  for (const logdb::LogEntry& e : first.entries) {
    std::cout << e.image_id << (e.judgment > 0 ? "+" : "-") << " ";
  }
  std::cout << "\n";

  const int probe = first.entries.front().image_id;
  const la::Vec r = matrix.LogVector(probe);
  int nonzero = 0;
  for (double v : r) {
    if (v != 0.0) ++nonzero;
  }
  std::cout << "\nlog vector r_" << probe << ": dimension " << r.size()
            << ", " << nonzero << " nonzero entries\n";
  std::cout << "(each image's log vector has one dimension per session; "
               "the log-side SVM of LRF-2SVMs/LRF-CSVM learns on these)\n";
  return 0;
}
