// Many-user serving load generator: N worker threads replay simulated
// relevance-feedback sessions against ONE shared serve::RetrievalService
// (shared ImageDatabase + retrieval index + feedback log), then print
// throughput and latency percentiles — the concurrent-deployment scenario
// the paper assumes when it talks about accumulating feedback logs from
// many users.
//
// Every completed session is appended to the live logdb::LogStore by the
// service, so the run finishes with a bigger feedback log than it started
// with: the paper's data-collection loop, closed.
//
// The default corpus is synthetic clustered features (no image rendering),
// so a 20k-row run starts in about a second:
//
//   ./example_load_driver --threads=8 --sessions=200
//   ./example_load_driver --threads=1 --sessions=200   # scaling baseline
//
// With --remote=host:port the same load is driven over TCP against a
// running example_cbir_server or example_cbir_router (one net::TcpClient
// connection per worker thread). The driver does NOT rebuild the corpus: it
// sends a DescribeRequest and learns the corpus size, dims, and category
// count over the wire, deriving ground-truth judgments from the synthetic
// clustered layout (category = id % num_categories). Against a router,
// --expect-degraded additionally requires that at least one response came
// back with the degraded flag (partial scatter-gather).
#include <algorithm>
#include <atomic>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "api/messages.h"
#include "core/feedback_scheme.h"
#include "logdb/simulated_user.h"
#include "net/fault_injector.h"
#include "net/retrying_client.h"
#include "net/tcp_client.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "retrieval/synthetic_features.h"
#include "serve/retrieval_service.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

constexpr const char* kHelp =
    R"(load_driver — concurrent serving load generator

 load shape
  --threads=N           worker threads (default 4)
  --sessions=N          total sessions replayed across all threads (default 200)
  --rounds=N            feedback rounds per session (default 2)
  --judgments=N         images judged per round (default 10)
  --noise=F             judgment label-flip probability (default 0.1)
  --repeat-queries=N    draw query images from a pool of N images so the
                        first-round cache can hit (default 64; 0 = any image)
  --seed=N              master seed (default 17)

 corpus
  --synthetic-rows=N    clustered 36-dim feature corpus, no image rendering
                        (default 20000; category = cluster, one per ~100 rows)
  --categories=N --images-per-category=N
                        render a real synthetic-Corel corpus instead (slow)

 service
  --remote=HOST:PORT    drive a running example_cbir_server (or
                        example_cbir_router) over TCP instead of an
                        in-process service (one connection per worker). The
                        corpus is discovered over the wire via Describe —
                        nothing is rebuilt locally; the server must use the
                        default synthetic clustered corpus
  --expect-degraded     remote only: require >= 1 response carrying the
                        degraded flag (router answering with a shard down)
                        and skip the single-server accounting cross-check
  --scheme=S            Euclidean | RF-SVM | LRF-2SVMs | LRF-CSVM
                        (default RF-SVM)
  --k=N                 results per response (default 20)
  --depth=N             session ranking depth (0 = auto: k + rounds*judgments + 1)
  --max-sessions=N      session-manager capacity (default 4096)
  --ttl=F               session idle TTL seconds (default 0 = none)
  --cache-capacity=N    first-round cache entries (default 4096)
  --log-sessions=N      pre-collected feedback-log sessions (default 150)

 chaos (remote only)
  --chaos               route every outgoing frame through a fault injector
                        (delays, drops, resets, partial writes, bit flips)
                        and replace each worker's client with a retrying one
                        (backoff + jitter, reconnects, idempotent feedback).
                        Sessions lost to injected faults count as chaos
                        casualties; the run fails only if more than 20% die
  --chaos-seed=N        fault-schedule seed (default: --seed)
  --rpc-timeout-ms=N    per-RPC deadline under chaos (default 2000)

 output
  --json=FILE           also write a machine-readable run summary to FILE
                        (one JSON object; schema in bench/README.md)
  --explain-worst=K     remote non-chaos only: set the EXPLAIN flag on every
                        RPC and, after the run, print the K slowest requests'
                        server-side stage/counter breakdowns

 index (see quickstart): --index=exact|signature (default signature),
  --signature_bits, --candidate_factor, --index-seed
)";

using namespace cbir;

/// The session operations a worker replays — one implementation calls the
/// in-process service, the other speaks the wire protocol. Same sequence of
/// calls either way (the api::Dispatcher guarantees the server side maps
/// them onto the identical service methods).
class SessionApi {
 public:
  virtual ~SessionApi() = default;
  virtual Result<uint64_t> Start(int query_id) = 0;
  virtual Result<std::vector<int>> Query(uint64_t sid, int k) = 0;
  virtual Result<std::vector<int>> Feedback(
      uint64_t sid, const std::vector<logdb::LogEntry>& round, int k) = 0;
  virtual Status End(uint64_t sid) = 0;
  /// True when the last response carried the degraded flag (a router
  /// answered from a partial shard set); always false in-process.
  virtual bool last_degraded() const { return false; }
};

class LocalSessionApi : public SessionApi {
 public:
  explicit LocalSessionApi(serve::RetrievalService* service)
      : service_(service) {}
  Result<uint64_t> Start(int query_id) override {
    return service_->StartSession(query_id);
  }
  Result<std::vector<int>> Query(uint64_t sid, int k) override {
    return service_->Query(sid, k);
  }
  Result<std::vector<int>> Feedback(uint64_t sid,
                                    const std::vector<logdb::LogEntry>& round,
                                    int k) override {
    return service_->Feedback(sid, round, k);
  }
  Status End(uint64_t sid) override { return service_->EndSession(sid); }

 private:
  serve::RetrievalService* service_;
};

/// The K latency-worst EXPLAIN profiles seen across all workers
/// (--explain-worst). Offers are rare enough (one small sort per RPC) that
/// one mutex is fine for a load driver.
class WorstProfiles {
 public:
  explicit WorstProfiles(size_t k) : k_(k) {}
  void Offer(const api::ResponseProfile& profile) {
    if (k_ == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    worst_.push_back(profile);
    std::sort(worst_.begin(), worst_.end(),
              [](const api::ResponseProfile& a, const api::ResponseProfile& b) {
                return a.total_us > b.total_us;
              });
    if (worst_.size() > k_) worst_.resize(k_);
  }
  /// Worst first.
  std::vector<api::ResponseProfile> Take() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::move(worst_);
  }

 private:
  size_t k_;
  std::mutex mu_;
  std::vector<api::ResponseProfile> worst_;
};

class RemoteSessionApi : public SessionApi {
 public:
  explicit RemoteSessionApi(net::TcpClient client,
                            WorstProfiles* worst = nullptr)
      : client_(std::move(client)), worst_(worst) {
    if (worst_ != nullptr) client_.EnableProfiling();
  }
  Result<uint64_t> Start(int query_id) override {
    auto out = client_.StartSession(api::QuerySpec::ById(query_id));
    OfferProfile();
    return out;
  }
  Result<std::vector<int>> Query(uint64_t sid, int k) override {
    auto out = client_.Query(sid, k);
    OfferProfile();
    return out;
  }
  Result<std::vector<int>> Feedback(uint64_t sid,
                                    const std::vector<logdb::LogEntry>& round,
                                    int k) override {
    auto out = client_.Feedback(sid, round, k);
    OfferProfile();
    return out;
  }
  Status End(uint64_t sid) override { return client_.EndSession(sid); }
  bool last_degraded() const override { return client_.last_degraded(); }

 private:
  void OfferProfile() {
    if (worst_ != nullptr && client_.last_profile().has_value()) {
      worst_->Offer(*client_.last_profile());
    }
  }

  net::TcpClient client_;
  WorstProfiles* worst_;
};

/// Chaos backend: a RetryingClient whose frames pass through the shared
/// FaultInjector. Lost replies, resets and corrupted frames become bounded
/// retries instead of hangs or torn sessions.
class ChaosSessionApi : public SessionApi {
 public:
  ChaosSessionApi(std::string host, int port, net::RetryOptions options,
                  net::FaultInjector* injector)
      : client_(std::move(host), port, options, injector) {}
  Result<uint64_t> Start(int query_id) override {
    return client_.StartSession(api::QuerySpec::ById(query_id));
  }
  Result<std::vector<int>> Query(uint64_t sid, int k) override {
    return client_.Query(sid, k);
  }
  Result<std::vector<int>> Feedback(uint64_t sid,
                                    const std::vector<logdb::LogEntry>& round,
                                    int k) override {
    return client_.Feedback(sid, round, k);
  }
  Status End(uint64_t sid) override { return client_.EndSession(sid); }
  bool last_degraded() const override { return client_.last_degraded(); }
  net::RetryingClientStats retry_stats() const { return client_.stats(); }

 private:
  net::RetryingClient client_;
};

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = Flags::Parse(argc - 1, argv + 1);
  if (!flags_or.ok()) {
    std::cerr << flags_or.status() << "\n" << kHelp;
    return 1;
  }
  const Flags& flags = flags_or.value();
  if (flags.GetBool("help", false)) {
    std::cout << kHelp;
    return 0;
  }
  std::vector<std::string> known = retrieval::IndexFlagNames();
  for (const char* name :
       {"help", "threads", "sessions", "rounds", "judgments", "noise",
        "repeat-queries", "seed", "synthetic-rows", "categories",
        "images-per-category", "remote", "expect-degraded", "chaos",
        "chaos-seed", "rpc-timeout-ms", "scheme", "k", "depth",
        "max-sessions", "ttl", "cache-capacity", "log-sessions", "json",
        "explain-worst"}) {
    known.push_back(name);
  }
  if (Status s = flags.RequireKnown(known); !s.ok()) {
    std::cerr << s << "\n" << kHelp;
    return 1;
  }

  const int threads = flags.GetInt("threads", 4);
  const int total_sessions = flags.GetInt("sessions", 200);
  const int rounds = flags.GetInt("rounds", 2);
  const int judgments = flags.GetInt("judgments", 10);
  const double noise = flags.GetDouble("noise", 0.1);
  const int repeat_queries = flags.GetInt("repeat-queries", 64);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 17));
  const int k = flags.GetInt("k", 20);
  const std::string remote = flags.GetString("remote", "");
  const bool expect_degraded = flags.GetBool("expect-degraded", false);
  const bool chaos = flags.GetBool("chaos", false);
  const int rpc_timeout_ms = flags.GetInt("rpc-timeout-ms", 2000);
  const std::string json_path = flags.GetString("json", "");
  const int explain_worst = flags.GetInt("explain-worst", 0);
  if (threads < 1 || total_sessions < 1 || rounds < 0 || judgments < 1 ||
      k < 1) {
    std::cerr << "invalid load shape\n" << kHelp;
    return 1;
  }
  if (chaos && remote.empty()) {
    std::cerr << "--chaos needs --remote (it injects wire-level faults)\n"
              << kHelp;
    return 1;
  }
  if (expect_degraded && remote.empty()) {
    std::cerr << "--expect-degraded needs --remote (only a router degrades)\n"
              << kHelp;
    return 1;
  }
  if (!remote.empty() &&
      (flags.Has("categories") || flags.Has("images-per-category"))) {
    std::cerr << "--remote discovers the corpus via Describe and derives "
                 "judgments from the synthetic clustered layout; the "
                 "rendered-corpus flags only apply locally\n"
              << kHelp;
    return 1;
  }
  if (explain_worst > 0 && (remote.empty() || chaos)) {
    std::cerr << "--explain-worst needs --remote without --chaos (the "
                 "profile rides the plain TcpClient)\n"
              << kHelp;
    return 1;
  }

  // Chaos mode: one shared fault injector (thread-safe, deterministic
  // schedule) that every worker's frames pass through.
  net::FaultInjectorOptions chaos_options;
  chaos_options.seed = static_cast<uint64_t>(
      flags.GetInt("chaos-seed", static_cast<int>(seed)));
  chaos_options.delay_probability = 0.15;
  chaos_options.max_delay_ms = 3;
  chaos_options.drop_probability = 0.03;
  chaos_options.reset_probability = 0.02;
  chaos_options.partial_write_probability = 0.02;
  chaos_options.bit_flip_probability = 0.02;
  net::FaultInjector injector(chaos_options);

  auto index_options = retrieval::IndexOptionsFromFlags(flags);
  if (!index_options.ok()) {
    std::cerr << index_options.status() << "\n" << kHelp;
    return 1;
  }
  if (!flags.Has("index")) {
    // Serving default: sub-linear retrieval plus narrowed per-round scans.
    index_options->mode = retrieval::IndexMode::kSignature;
  }

  // ---- shared serving data: one database, one index, one feedback log ----
  // Local mode builds everything in-process. Remote mode builds NOTHING:
  // the corpus shape (size, dims, categories) arrives over the wire via
  // DescribeRequest, and ground-truth judgments are derived from the
  // synthetic clustered layout (category = id % num_categories).
  Stopwatch setup_watch;
  std::unique_ptr<retrieval::ImageDatabase> db;
  if (remote.empty()) {
    db = std::make_unique<retrieval::ImageDatabase>([&] {
      if (flags.Has("categories") || flags.Has("images-per-category")) {
        retrieval::DatabaseOptions db_options;
        db_options.corpus.num_categories = flags.GetInt("categories", 8);
        db_options.corpus.images_per_category =
            flags.GetInt("images-per-category", 40);
        db_options.corpus.width = 64;
        db_options.corpus.height = 64;
        db_options.corpus.seed = 21;
        std::cout << "rendering corpus ("
                  << db_options.corpus.num_categories << " x "
                  << db_options.corpus.images_per_category << " images)...\n";
        return retrieval::ImageDatabase::Build(db_options);
      }
      const int rows = flags.GetInt("synthetic-rows", 20000);
      std::cout << "building synthetic clustered corpus (" << rows
                << " rows)...\n";
      return retrieval::ClusteredDatabase(rows, seed);
    }());
  }

  serve::ServiceOptions service_options;
  service_options.scheme = flags.GetString("scheme", "RF-SVM");
  service_options.default_k = k;
  service_options.candidate_depth =
      flags.GetInt("depth", 0) > 0 ? flags.GetInt("depth", 0)
                                   : k + rounds * judgments + 1;
  service_options.sessions.max_sessions =
      static_cast<size_t>(flags.GetInt("max-sessions", 4096));
  service_options.sessions.ttl_seconds = flags.GetDouble("ttl", 0.0);
  service_options.cache.capacity =
      static_cast<size_t>(flags.GetInt("cache-capacity", 4096));

  la::Matrix log_features;
  logdb::LogStore store;
  int64_t initial_log_sessions = 0;
  int64_t initial_remote_requests = 0;
  // Corpus shape the workers judge against: from the local database, or
  // from the remote Describe handshake.
  int corpus_size = 0;
  std::vector<int> categories;
  int fetch_depth = service_options.candidate_depth;
  std::unique_ptr<serve::RetrievalService> service;
  if (remote.empty()) {
    db->BuildIndex(index_options.value());
    logdb::LogCollectionOptions log_options;
    log_options.num_sessions = flags.GetInt("log-sessions", 150);
    log_options.session_size = 20;
    log_options.user.noise_rate = noise;
    log_options.seed = seed + 1;
    store = logdb::CollectLogs(db->features(), db->categories(), log_options);
    log_features = store.BuildMatrix(db->num_images()).ToDenseMatrix();
    initial_log_sessions = store.num_sessions();

    auto service_or = serve::RetrievalService::Create(
        db.get(), &log_features, &store,
        core::MakeDefaultSchemeOptions(*db, &log_features), service_options);
    if (!service_or.ok()) {
      std::cerr << service_or.status() << "\n" << kHelp;
      return 1;
    }
    service = std::move(service_or).value();
    corpus_size = db->num_images();
    categories = db->categories();
    std::cout << "service ready in "
              << FormatDouble(setup_watch.ElapsedSeconds(), 2) << "s: "
              << db->num_images() << " images, index=" << db->index()->name()
              << ", scheme=" << service_options.scheme
              << ", depth=" << service_options.candidate_depth << "\n";
  } else {
    // Probe the endpoint once up front so a bad address fails fast instead
    // of as N confusing worker failures, and Describe it — the corpus
    // shape comes over the wire, nothing is rebuilt locally.
    auto probe = net::TcpClient::ConnectEndpoint(remote, chaos ? 2000 : 0);
    if (!probe.ok()) {
      std::cerr << probe.status() << "\n" << kHelp;
      return 1;
    }
    auto described = probe->Describe();
    if (!described.ok()) {
      std::cerr << "remote describe failed: " << described.status() << "\n";
      return 1;
    }
    if (described->corpus_size == 0 || described->num_categories == 0) {
      std::cerr << "remote corpus is empty (" << described->corpus_size
                << " images, " << described->num_categories
                << " categories)\n";
      return 1;
    }
    corpus_size = static_cast<int>(described->corpus_size);
    // The synthetic clustered corpus labels image i with i % categories —
    // the layout contract that lets the driver judge without the corpus.
    categories.resize(static_cast<size_t>(corpus_size));
    for (int i = 0; i < corpus_size; ++i) {
      categories[static_cast<size_t>(i)] =
          i % static_cast<int>(described->num_categories);
    }
    if (described->candidate_depth > 0) {
      fetch_depth = described->candidate_depth;
    }
    auto remote_stats = probe->Stats();
    if (!remote_stats.ok()) {
      std::cerr << "remote stats probe failed: " << remote_stats.status()
                << "\n";
      return 1;
    }
    initial_log_sessions =
        static_cast<int64_t>(remote_stats->log_sessions_appended);
    initial_remote_requests = static_cast<int64_t>(remote_stats->requests);
    std::cout << "remote service at " << remote << " described: "
              << described->corpus_size << " images x " << described->dims
              << " dims, " << described->num_categories
              << " categories, scheme=" << described->scheme
              << ", index=" << described->index << ", depth="
              << described->candidate_depth << " (no local corpus build)\n";
  }
  // The probe validated the endpoint format, so this split cannot fail.
  std::string remote_host;
  int remote_port = 0;
  if (!remote.empty()) {
    const size_t colon = remote.rfind(':');
    remote_host = remote.substr(0, colon);
    remote_port = std::stoi(remote.substr(colon + 1));
  }
  std::cout << "replaying " << total_sessions << " sessions (" << rounds
            << " rounds x " << judgments << " judgments) on " << threads
            << " thread(s)" << (chaos ? " under fault injection" : "")
            << "...\n";

  // ---- the load: every thread replays sessions against the one service ----
  const logdb::SimulatedUser user(categories, logdb::UserModel{noise});
  const int query_pool =
      repeat_queries > 0 ? std::min(repeat_queries, corpus_size)
                         : corpus_size;
  std::atomic<int> next_session{0};
  std::atomic<int> failures{0};
  std::atomic<int> evicted_midflight{0};
  std::atomic<int> chaos_lost{0};
  std::atomic<int> outage_lost{0};
  // Successful Query + Feedback calls the driver got answers to — the
  // server's `requests` counter must have grown by exactly this much on a
  // clean non-chaos remote run (the accounting cross-check below).
  std::atomic<int64_t> requests_succeeded{0};
  // Responses that arrived with the degraded frame flag set — a router
  // answering from a partial scatter while a shard is down or slow.
  std::atomic<int64_t> degraded_seen{0};
  std::mutex retry_stats_mu;
  net::RetryingClientStats retry_totals;
  WorstProfiles worst_profiles(
      static_cast<size_t>(std::max(0, explain_worst)));
  Stopwatch load_watch;
  auto worker = [&](int worker_id) {
    // One backend per worker: the in-process service is shared; a remote
    // worker owns its TCP connection (the server is thread-per-connection).
    std::unique_ptr<SessionApi> backend;
    ChaosSessionApi* chaos_backend = nullptr;
    if (remote.empty()) {
      backend = std::make_unique<LocalSessionApi>(service.get());
    } else if (chaos) {
      net::RetryOptions retry_options;
      retry_options.max_attempts = 8;
      retry_options.initial_backoff_ms = 5;
      retry_options.max_backoff_ms = 100;
      retry_options.connect_timeout_ms = 2000;
      retry_options.rpc_timeout_ms = rpc_timeout_ms;
      retry_options.seed = seed + 31 * static_cast<uint64_t>(worker_id + 1);
      auto api = std::make_unique<ChaosSessionApi>(remote_host, remote_port,
                                                   retry_options, &injector);
      chaos_backend = api.get();
      backend = std::move(api);
    } else {
      auto client = net::TcpClient::ConnectEndpoint(remote);
      if (!client.ok()) {
        std::cerr << client.status() << "\n";
        failures.fetch_add(1);
        return;
      }
      backend = std::make_unique<RemoteSessionApi>(
          std::move(client).value(),
          explain_worst > 0 ? &worst_profiles : nullptr);
    }
    // A session that dies under fault injection is a chaos casualty, not a
    // driver failure. Any status can surface: beyond the obvious
    // kUnavailable/kDeadlineExceeded/kIoError, a bit-flipped frame can
    // decode as a *different valid* request (frames carry a CRC only when
    // the checksum flag is negotiated; raw TcpClient frames do not),
    // poisoning the session into FailedPrecondition or Internal on a later
    // call. The run's assertion is that casualties stay bounded, not zero.
    const auto chaotic = [&](const Status&) { return chaos; };
    // Under --expect-degraded a shard is being killed on purpose: sessions
    // pinned to it fail fast with kUnavailable (or lose their shard
    // mid-RPC). Those are the outage doing its job, not driver failures.
    const auto outage = [&](const Status& st) {
      return expect_degraded && (st.code() == StatusCode::kUnavailable ||
                                 st.code() == StatusCode::kDeadlineExceeded ||
                                 st.code() == StatusCode::kIoError);
    };
    for (int s = next_session.fetch_add(1); s < total_sessions;
         s = next_session.fetch_add(1)) {
      // Deterministic per-session stream regardless of which thread runs it.
      Rng rng(seed ^ (0x5851F42D4C957F2Dull * static_cast<uint64_t>(s + 1)));
      const int query_id =
          static_cast<int>(rng.UniformInt(static_cast<uint64_t>(query_pool)));
      auto session_or = backend->Start(query_id);
      if (!session_or.ok()) {
        (chaotic(session_or.status())  ? chaos_lost
         : outage(session_or.status()) ? outage_lost
                                       : failures)
            .fetch_add(1);
        continue;
      }
      const uint64_t sid = session_or.value();
      const int fetch_k = fetch_depth;
      // A NotFound mid-session is not a failure: under --ttl /
      // --max-sessions eviction pressure the service legitimately reclaims
      // sessions out from under slow users.
      const auto evicted = [](const Status& s) {
        return s.code() == StatusCode::kNotFound;
      };
      auto ranking_or = backend->Query(sid, fetch_k);
      bool ok = ranking_or.ok();
      if (ok) {
        requests_succeeded.fetch_add(1);
        if (backend->last_degraded()) degraded_seen.fetch_add(1);
      }
      bool gone = !ok && evicted(ranking_or.status());
      bool lost = !ok && chaotic(ranking_or.status());
      bool down = !ok && outage(ranking_or.status());
      std::unordered_set<int> judged{query_id};
      const int query_category = categories[static_cast<size_t>(query_id)];
      for (int r = 0; r < rounds && ok; ++r) {
        std::vector<logdb::LogEntry> round;
        for (int id : ranking_or.value()) {
          if (static_cast<int>(round.size()) >= judgments) break;
          if (!judged.insert(id).second) continue;
          round.push_back(
              logdb::LogEntry{id, user.Judge(id, query_category, &rng)});
        }
        ranking_or = backend->Feedback(sid, round, fetch_k);
        ok = ranking_or.ok();
        if (ok) {
          requests_succeeded.fetch_add(1);
          if (backend->last_degraded()) degraded_seen.fetch_add(1);
        }
        gone = !ok && evicted(ranking_or.status());
        lost = !ok && chaotic(ranking_or.status());
        down = !ok && outage(ranking_or.status());
      }
      // End the session even on a failed round so its completed rounds
      // still reach the log store and nothing idles until eviction.
      const Status end = backend->End(sid);
      if (gone || (!end.ok() && evicted(end))) {
        evicted_midflight.fetch_add(1);
      } else if (lost || (!end.ok() && chaotic(end))) {
        chaos_lost.fetch_add(1);
      } else if (down || (!end.ok() && outage(end))) {
        outage_lost.fetch_add(1);
      } else if (!ok || !end.ok()) {
        failures.fetch_add(1);
      }
    }
    if (chaos_backend != nullptr) {
      const net::RetryingClientStats s = chaos_backend->retry_stats();
      std::lock_guard<std::mutex> lock(retry_stats_mu);
      retry_totals.rpcs += s.rpcs;
      retry_totals.attempts += s.attempts;
      retry_totals.retries += s.retries;
      retry_totals.reconnects += s.reconnects;
      retry_totals.exhausted += s.exhausted;
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  for (std::thread& t : pool) t.join();
  const double elapsed = load_watch.ElapsedSeconds();

  // ---- results ----
  bool accounting_ok = true;
  // --json accumulators: the mode-specific blocks are rendered where the
  // numbers already are, the file written once at the end.
  std::string json_server;
  std::string json_stages;
  const auto stage_json = [](const std::string& stage, uint64_t count,
                             double p50, double p95, double p99) {
    return "    {\"stage\": \"" + stage + "\", \"count\": " +
           std::to_string(count) + ", \"p50_us\": " + FormatDouble(p50, 1) +
           ", \"p95_us\": " + FormatDouble(p95, 1) +
           ", \"p99_us\": " + FormatDouble(p99, 1) + "}";
  };
  std::cout << "\n";
  if (remote.empty()) {
    const serve::ServiceStats stats = service->stats();
    json_server =
        "  \"server\": {\"requests\": " + std::to_string(stats.requests) +
        ", \"qps\": " + FormatDouble(stats.qps, 1) +
        ", \"latency_p50_us\": " + FormatDouble(stats.latency.p50_us, 1) +
        ", \"latency_p95_us\": " + FormatDouble(stats.latency.p95_us, 1) +
        ", \"latency_p99_us\": " + FormatDouble(stats.latency.p99_us, 1) +
        ", \"cache_hit_rate\": " + FormatDouble(stats.cache_hit_rate, 4) +
        "},\n";
    // The in-process service records into the process-global registry, so
    // the per-stage attribution comes from the same series a remote run
    // reads over the wire.
    const obs::MetricsSnapshot snap =
        obs::MetricsRegistry::Default().Snapshot();
    for (const obs::HistogramSample& h : snap.histograms) {
      if (h.name != "cbir_request_stage_us") continue;
      if (!json_stages.empty()) json_stages += ",\n";
      json_stages += stage_json(h.label_value, h.summary.count,
                                h.summary.p50_us, h.summary.p95_us,
                                h.summary.p99_us);
    }
    std::cout << serve::FormatServiceStats(stats) << "\n\n"
              << "wall time        " << FormatDouble(elapsed, 2) << " s\n"
              << "sessions/s       "
              << FormatDouble(total_sessions / elapsed, 1) << "\n"
              << "requests/s (QPS) "
              << FormatDouble(static_cast<double>(stats.requests) / elapsed, 1)
              << "\n"
              << "failures         " << failures.load() << "\n"
              << "evicted mid-run  " << evicted_midflight.load() << "\n"
              << "feedback log     " << initial_log_sessions << " -> "
              << store.num_sessions() << " sessions ("
              << store.TotalJudgments() << " judgments)\n";
  } else {
    auto final_client = net::TcpClient::ConnectEndpoint(remote);
    std::cout << "wall time        " << FormatDouble(elapsed, 2) << " s\n"
              << "sessions/s       "
              << FormatDouble(total_sessions / elapsed, 1) << "\n"
              << "failures         " << failures.load() << "\n"
              << "evicted mid-run  " << evicted_midflight.load() << "\n"
              << "degraded replies " << degraded_seen.load() << "\n";
    if (expect_degraded) {
      std::cout << "outage casualties " << outage_lost.load()
                << " sessions (pinned to a down shard — expected)\n";
    }
    if (chaos) {
      const net::FaultInjectorStats fi = injector.stats();
      std::cout << "chaos casualties " << chaos_lost.load() << " sessions\n"
                << "injected faults  " << fi.faults() << " over " << fi.frames
                << " frames (delays " << fi.delays << ", drops " << fi.drops
                << ", resets " << fi.resets << ", partial writes "
                << fi.partial_writes << ", bit flips " << fi.bit_flips
                << ")\n"
                << "retries          " << retry_totals.retries << " over "
                << retry_totals.rpcs << " rpcs (" << retry_totals.attempts
                << " attempts, " << retry_totals.reconnects
                << " reconnects, " << retry_totals.exhausted
                << " exhausted)\n";
    }
    if (final_client.ok()) {
      auto stats = final_client->Stats();
      if (stats.ok()) {
        json_server =
            "  \"server\": {\"requests\": " + std::to_string(stats->requests) +
            ", \"qps\": " + FormatDouble(stats->qps, 1) +
            ", \"latency_p50_us\": " + FormatDouble(stats->latency_p50_us, 1) +
            ", \"latency_p95_us\": " + FormatDouble(stats->latency_p95_us, 1) +
            ", \"latency_p99_us\": " + FormatDouble(stats->latency_p99_us, 1) +
            ", \"cache_hit_rate\": " + FormatDouble(stats->cache_hit_rate, 4) +
            "},\n";
        std::cout << "server: " << stats->requests << " requests, "
                  << stats->sessions_started << " sessions started, "
                  << stats->sessions_ended << " ended, p95 "
                  << FormatDouble(stats->latency_p95_us, 1) << " us, "
                  << "cache hit rate "
                  << FormatDouble(stats->cache_hit_rate, 3) << "\n"
                  << "feedback log     " << initial_log_sessions << " -> "
                  << stats->log_sessions_appended
                  << " sessions appended by the server\n";
        // Accounting cross-check: on a clean non-chaos run every request
        // the driver saw succeed must appear in the server's counter —
        // a mismatch means a request was double-applied or lost, and the
        // run fails. (Chaos and expected-outage runs legitimately diverge:
        // a lost *reply* leaves the request counted server-side only.)
        if (!chaos && !expect_degraded && failures.load() == 0 &&
            evicted_midflight.load() == 0) {
          const int64_t server_delta =
              static_cast<int64_t>(stats->requests) - initial_remote_requests;
          if (server_delta != requests_succeeded.load()) {
            std::cerr << "ACCOUNTING MISMATCH: server request count grew by "
                      << server_delta << " but the driver counted "
                      << requests_succeeded.load()
                      << " successful requests\n";
            accounting_ok = false;
          } else {
            std::cout << "accounting check  server delta " << server_delta
                      << " == driver count " << requests_succeeded.load()
                      << "\n";
          }
        }
      }
      // Per-stage latency attribution, from the server's metrics registry
      // over the wire: where each request's time went, stage by stage.
      auto metrics = final_client->Metrics();
      if (metrics.ok()) {
        const char* kStageOrder[] = {"decode",     "admission", "queue_wait",
                                     "index_scan", "solve",     "encode",
                                     "write"};
        TablePrinter table({"stage", "count", "p50_us", "p95_us", "p99_us"});
        for (const char* stage : kStageOrder) {
          for (const api::MetricHistogramSample& h : metrics->histograms) {
            if (h.name != "cbir_request_stage_us" || h.label_value != stage) {
              continue;
            }
            table.AddRow({stage, std::to_string(h.count),
                          FormatDouble(h.p50_us, 0), FormatDouble(h.p95_us, 0),
                          FormatDouble(h.p99_us, 0)});
            if (!json_stages.empty()) json_stages += ",\n";
            json_stages +=
                stage_json(stage, h.count, h.p50_us, h.p95_us, h.p99_us);
          }
        }
        for (const api::MetricHistogramSample& h : metrics->histograms) {
          if (h.name != "cbir_net_request_us") continue;
          table.AddSeparator();
          table.AddRow({"total", std::to_string(h.count),
                        FormatDouble(h.p50_us, 0), FormatDouble(h.p95_us, 0),
                        FormatDouble(h.p99_us, 0)});
        }
        std::cout << "\nper-stage server latency (from MetricsResponse):\n";
        table.Print(std::cout);
      } else {
        std::cerr << "metrics fetch failed: " << metrics.status() << "\n";
      }
    }
  }
  if (explain_worst > 0) {
    const std::vector<api::ResponseProfile> worst = worst_profiles.Take();
    std::cout << "\n" << worst.size()
              << " slowest profiled requests (--explain-worst="
              << explain_worst << "), server-side view:\n";
    for (const api::ResponseProfile& p : worst) {
      // Reuse the server's span-tree rendering: the profile block is the
      // same spans/counters, just carried over the wire.
      std::vector<obs::TraceSpan> spans;
      spans.reserve(p.spans.size());
      for (const api::ProfileSpan& s : p.spans) {
        spans.push_back(
            {s.name, s.start_us, s.duration_us, static_cast<int>(s.depth)});
      }
      std::vector<obs::TraceCounter> counters;
      counters.reserve(p.counters.size());
      for (const api::ProfileCounter& c : p.counters) {
        counters.push_back({c.name, c.value});
      }
      std::cout << obs::FormatSpanTree(p.trace_id, p.total_us, spans,
                                       counters)
                << "\n";
    }
  }

  // Chaos gate: the retry machinery must keep injected-fault session loss
  // bounded (a runaway loss rate means retries or deadlines are broken).
  const bool chaos_bounded = chaos_lost.load() * 5 <= total_sessions;
  // Degradation gate: --expect-degraded means a shard went down mid-run, so
  // the router must have (a) kept answering (some sessions succeeded) and
  // (b) actually flagged at least one partial merge.
  const bool degraded_ok =
      !expect_degraded ||
      (degraded_seen.load() > 0 && requests_succeeded.load() > 0);
  if (expect_degraded && !degraded_ok) {
    std::cerr << "DEGRADED EXPECTATION FAILED: saw " << degraded_seen.load()
              << " degraded responses and " << requests_succeeded.load()
              << " successful requests\n";
  }
  const bool run_ok = failures.load() == 0 && chaos_bounded &&
                      accounting_ok && degraded_ok;

  if (!json_path.empty()) {
    std::string json = "{\n";
    json += "  \"schema_version\": 1,\n";
    json += std::string("  \"mode\": \"") +
            (remote.empty() ? "local" : "remote") + "\",\n";
    json += std::string("  \"chaos\": ") + (chaos ? "true" : "false") + ",\n";
    json += "  \"threads\": " + std::to_string(threads) + ",\n";
    json += "  \"sessions\": " + std::to_string(total_sessions) + ",\n";
    json += "  \"rounds\": " + std::to_string(rounds) + ",\n";
    json += "  \"judgments\": " + std::to_string(judgments) + ",\n";
    json += "  \"wall_time_s\": " + FormatDouble(elapsed, 3) + ",\n";
    json += "  \"sessions_per_s\": " +
            FormatDouble(total_sessions / elapsed, 2) + ",\n";
    json += "  \"requests_succeeded\": " +
            std::to_string(requests_succeeded.load()) + ",\n";
    json += "  \"failures\": " + std::to_string(failures.load()) + ",\n";
    json += "  \"evicted_midflight\": " +
            std::to_string(evicted_midflight.load()) + ",\n";
    json += "  \"chaos_lost\": " + std::to_string(chaos_lost.load()) + ",\n";
    json += "  \"outage_lost\": " + std::to_string(outage_lost.load()) +
            ",\n";
    json += "  \"degraded_responses\": " +
            std::to_string(degraded_seen.load()) + ",\n";
    if (chaos) {
      json += "  \"retries\": {\"rpcs\": " +
              std::to_string(retry_totals.rpcs) +
              ", \"attempts\": " + std::to_string(retry_totals.attempts) +
              ", \"retries\": " + std::to_string(retry_totals.retries) +
              ", \"reconnects\": " + std::to_string(retry_totals.reconnects) +
              ", \"exhausted\": " + std::to_string(retry_totals.exhausted) +
              "},\n";
    }
    json += json_server;  // may be empty when the final stats fetch failed
    json += "  \"stages\": [\n" + json_stages + "\n  ],\n";
    json += std::string("  \"ok\": ") + (run_ok ? "true" : "false") + "\n";
    json += "}\n";
    std::ofstream out(json_path, std::ios::trunc);
    if (!out) {
      std::cerr << "cannot write --json file " << json_path << "\n";
      return 1;
    }
    out << json;
    std::cout << "wrote run summary to " << json_path << "\n";
  }
  return run_ok ? 0 : 1;
}
