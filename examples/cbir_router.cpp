// CBIR shard router: a net::TcpServer front tier speaking the same wire
// protocol as cbir_server, fanning out over N backend shards. New sessions
// are consistent-hashed to a backend and pinned there (the relevance-feedback
// SVM state lives in that shard); first-round queries scatter to every
// healthy shard and merge by distance, answering degraded (frame flag 0x20)
// when a shard misses its deadline. An active health checker ejects dead
// backends (pinned sessions then fail fast with kUnavailable) and re-admits
// them when they recover.
//
//   ./example_cbir_server --port=7401 --first-session-id=1 &
//   ./example_cbir_server --port=7402 --first-session-id=1000001 &
//   ./example_cbir_router --port=7345 --backends=127.0.0.1:7401,127.0.0.1:7402 &
//   ./example_load_driver --remote=127.0.0.1:7345 --sessions=200
//
// The backends must serve the same corpus (same --synthetic-rows/--seed/...)
// — the router Describes each one at startup and refuses to start over a
// mismatch. SIGINT/SIGTERM drain in-flight requests and print final stats.
#include <atomic>
#include <csignal>
#include <chrono>
#include <iostream>
#include <memory>
#include <thread>

#include "net/tcp_server.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/process_stats.h"
#include "obs/structured_log.h"
#include "router/backend_pool.h"
#include "router/shard_router.h"
#include "util/flags.h"
#include "util/stopwatch.h"

namespace {

constexpr const char* kHelp =
    R"(cbir_router — session-affine scatter-gather front tier over cbir_server shards

 transport
  --port=N              listen port (default 7345; 0 = OS-assigned, printed)
  --host=S              bind address (default 127.0.0.1)
  --backends=LIST       comma-separated backend shards, host:port each
                        (required), e.g. 127.0.0.1:7401,127.0.0.1:7402
  --idle-timeout-ms=N   reap connections silent for N ms (default 0 = never)
  --drain-timeout-ms=N  shutdown grace for in-flight requests (default 1000)

 health checking / failover
  --probe-interval-ms=N   Describe-probe every backend this often (default 250)
  --eject-after=N         consecutive failures that eject a backend (default 2)
  --readmit-after=N       consecutive probe successes that re-admit (default 2)
  --probe-timeout-ms=N    probe RPC budget (default 500)
  --shard-deadline-ms=N   per-shard scatter budget; a slower shard is dropped
                          from the merge and the response goes out degraded
                          (default 1000)
  --rpc-timeout-ms=N      pinned-session forwarding budget (default 2000)

 observability
  --metrics-port=N      plaintext metrics-and-debug listener (0 = OS-assigned,
                        printed). Omit to disable. Endpoints: /metrics,
                        /healthz (200 while serving with >=1 healthy backend,
                        503 while draining or with none), /statusz
  --log-interval=F      per-event rate limit of the structured event log,
                        seconds (default 1.0). Backend ejections/re-admissions
                        (event=backend_down / backend_up) always log.
)";

using namespace cbir;

volatile std::sig_atomic_t g_stop = 0;

void HandleStopSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = Flags::Parse(argc - 1, argv + 1);
  if (!flags_or.ok()) {
    std::cerr << flags_or.status() << "\n" << kHelp;
    return 1;
  }
  const Flags& flags = flags_or.value();
  if (flags.GetBool("help", false)) {
    std::cout << kHelp;
    return 0;
  }
  if (Status s = flags.RequireKnown(
          {"help", "port", "host", "backends", "idle-timeout-ms",
           "drain-timeout-ms", "probe-interval-ms", "eject-after",
           "readmit-after", "probe-timeout-ms", "shard-deadline-ms",
           "rpc-timeout-ms", "metrics-port", "log-interval"});
      !s.ok()) {
    std::cerr << s << "\n" << kHelp;
    return 1;
  }

  auto backends_or = router::ParseBackendList(flags.GetString("backends", ""));
  if (!backends_or.ok()) {
    std::cerr << backends_or.status() << "\n" << kHelp;
    return 1;
  }

  obs::StructuredLog slog(&std::cout, flags.GetDouble("log-interval", 1.0));

  router::BackendPoolOptions pool_options;
  pool_options.probe_interval_ms = flags.GetInt("probe-interval-ms", 250);
  pool_options.eject_after_failures = flags.GetInt("eject-after", 2);
  pool_options.readmit_after_successes = flags.GetInt("readmit-after", 2);
  pool_options.probe_timeout_ms = flags.GetInt("probe-timeout-ms", 500);
  pool_options.shard_deadline_ms = flags.GetInt("shard-deadline-ms", 1000);
  pool_options.session_retry.rpc_timeout_ms =
      flags.GetInt("rpc-timeout-ms", 2000);
  pool_options.log = &slog;

  router::BackendPool pool(backends_or.value(), pool_options);
  if (Status s = pool.Start(); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  router::ShardRouter shard_router(&pool, router::RouterOptions{});

  net::TcpServerOptions server_options;
  server_options.host = flags.GetString("host", "127.0.0.1");
  server_options.port = flags.GetInt("port", 7345);
  server_options.idle_timeout_ms = flags.GetInt("idle-timeout-ms", 0);
  server_options.drain_timeout_ms = flags.GetInt("drain-timeout-ms", 1000);
  server_options.connection_observer = [&slog](const char* event,
                                               uint64_t connection_id) {
    slog.Log(std::string("conn_") + event,
             {{"id", std::to_string(connection_id)}});
  };
  net::TcpServer server(&shard_router, server_options);
  if (Status s = server.Start(); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  const Stopwatch uptime;
  std::atomic<bool> draining{false};
  std::unique_ptr<obs::ExpositionServer> metrics_server;
  if (flags.Has("metrics-port")) {
    obs::MetricsRegistry::Default().OnGather([&pool] {
      const obs::ProcessStats p = obs::ReadProcessStats();
      obs::MetricsRegistry& r = obs::MetricsRegistry::Default();
      r.GetGauge("cbir_process_rss_bytes")->Set(p.rss_bytes);
      r.GetGauge("cbir_router_healthy_backends")
          ->Set(static_cast<int64_t>(pool.num_healthy()));
    });
    metrics_server = std::make_unique<obs::ExpositionServer>(
        &obs::MetricsRegistry::Default(), server_options.host,
        flags.GetInt("metrics-port", 0));
    metrics_server->SetStatusHandler("/healthz", [&draining, &pool] {
      obs::ExpositionServer::StatusResult result;
      if (draining.load(std::memory_order_acquire)) {
        result.code = 503;
        result.body = "draining\n";
      } else if (pool.num_healthy() == 0) {
        result.code = 503;
        result.body = "no healthy backends\n";
      } else {
        result.body = "ok\n";
      }
      return result;
    });
    metrics_server->SetHandler(
        "/statusz", [&uptime, &pool, &shard_router, &server] {
          std::string out = "cbir_router statusz\n";
          out += "uptime_seconds: " +
                 std::to_string(
                     static_cast<int64_t>(uptime.ElapsedSeconds())) +
                 "\n";
          out += "backends:";
          for (int b = 0; b < pool.num_backends(); ++b) {
            out += " " + pool.endpoint(b).Label() + "=" +
                   (pool.healthy(b) ? "healthy" : "ejected");
          }
          out += "\n";
          const router::RouterStats s = shard_router.stats();
          out += "sessions: " + std::to_string(s.sessions_started) +
                 " started/" + std::to_string(s.sessions_ended) + " ended/" +
                 std::to_string(s.active_sessions) + " active\n";
          out += "scatter: " + std::to_string(s.scatter_queries) +
                 " queries, " + std::to_string(s.degraded_responses) +
                 " degraded\n";
          out += "pinned: " + std::to_string(s.feedbacks_forwarded) +
                 " feedbacks forwarded, " +
                 std::to_string(s.failfast_unavailable) +
                 " failed fast (backend ejected)\n";
          const net::TcpServerStats n = server.stats();
          out += "connections: accepted=" +
                 std::to_string(n.connections_accepted) +
                 " closed=" + std::to_string(n.connections_closed) +
                 " decode_errors=" + std::to_string(n.decode_errors) + "\n";
          return out;
        });
    if (Status s = metrics_server->Start(); !s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
  }

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  const api::DescribeResponse& corpus = pool.describe();
  std::cout << "routing over " << pool.num_backends() << " backends ("
            << pool.num_healthy() << " healthy), corpus "
            << corpus.corpus_size << " images x " << corpus.dims
            << " dims, scheme=" << corpus.scheme << "\n"
            << "listening on " << server_options.host << ":" << server.port()
            << "\n";
  if (metrics_server != nullptr) {
    std::cout << "metrics listening on " << server_options.host << ":"
              << metrics_server->port() << "\n";
  }
  std::cout << std::flush;

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::cout << "draining...\n";
  draining.store(true, std::memory_order_release);
  server.Stop();
  pool.Stop();
  if (metrics_server != nullptr) metrics_server->Stop();

  const router::RouterStats s = shard_router.stats();
  const router::BackendPoolStats p = pool.stats();
  const net::TcpServerStats n = server.stats();
  std::cout << "router stats: sessions=" << s.sessions_started << " started/"
            << s.sessions_ended << " ended scatter=" << s.scatter_queries
            << " degraded=" << s.degraded_responses
            << " feedbacks=" << s.feedbacks_forwarded
            << " failfast=" << s.failfast_unavailable << "\n"
            << "health: probes=" << p.probes << " failures="
            << p.probe_failures << " ejections=" << p.ejections
            << " readmissions=" << p.readmissions << "\n"
            << "connections accepted " << n.connections_accepted
            << ", requests served " << n.requests_served
            << ", decode errors " << n.decode_errors << "\n";
  return 0;
}
